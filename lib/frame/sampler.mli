(** Word-level noise sampling for the bit-sliced engine.

    A sampler is a position-based walk over the raw outputs of one or
    more {!Mc.Rng} keys — one key per 64-shot {e lane}: every drawn
    word is a pure function of (key, position).  All lanes share one
    position counter, and every call consumes a number of positions
    that depends only on its probability argument — never on the lane
    count — so lane [j] of a wide sampler draws exactly the words a
    single-lane sampler for the same key would draw.  The batch
    engine, its per-shot scalar cross-check, and every tile width
    therefore see the identical noise: the basis of the bit-identical
    batch-vs-scalar and cross-width guarantees. *)

type t

(** [create key] — a fresh single-lane sampler at position 0. *)
val create : Mc.Rng.key -> t

(** [create_tile keys] — a sampler with one lane per key (the array is
    copied).  Lane [j] draws from [keys.(j)]. *)
val create_tile : Mc.Rng.key array -> t

(** Number of 64-shot lanes. *)
val lanes : t -> int

(** [uniform t] — next uniform 64-bit word of lane 0 (advances the
    shared position by 1 for every lane). *)
val uniform : t -> int64

(** Binary digits of p kept by {!bernoulli} (40: absolute bias
    < 2^-40). *)
val digits : int

(** [bernoulli t p] — a lane-0 word whose 64 bits are IID
    Bernoulli(p), sampled by the binary expansion of [p].  The number
    of positions consumed depends only on [p]. *)
val bernoulli : t -> float -> int64

(** [pauli t ~px ~py ~pz] — [(x_plane, z_plane)] lane-0 words of 64
    IID single-qubit Pauli errors: per bit, X with probability [px],
    Y with [py] (both planes set), Z with [pz], identity otherwise. *)
val pauli : t -> px:float -> py:float -> pz:float -> int64 * int64

(** {1 Compiled digit plans}

    A [plan] precomputes the clamped fixed-point digits of a
    probability so the hot path runs no float code and no digit scan.
    Sampling with [plan p] consumes exactly the positions
    [bernoulli _ p] would. *)

type plan

val plan : float -> plan

(** Positions consumed per sampling call of this plan. *)
val plan_draws : plan -> int

(** [bernoulli_plan_into t pl dst off] — one Bernoulli word per lane:
    [dst.(off + j)] receives lane [j]'s word. *)
val bernoulli_plan_into : t -> plan -> int64 array -> int -> unit

(** [bernoulli_plan_xor_sel t pl dst ~sel ~stride] — whole-op noise
    injection: bit-identical to calling {!bernoulli_plan_xor} once
    per row of [sel] in order, at offsets [sel.(i) * stride], but
    with each lane's digit folds fused into one bulk [Mc.Rng] call —
    the hot path of compiled [Flip_x]/[Flip_z] ops. *)
val bernoulli_plan_xor_sel :
  t -> plan -> int64 array -> sel:int array -> stride:int -> unit

(** [bernoulli_plan_xor t pl dst off] — as {!bernoulli_plan_into} but
    XORs into the destination row (fault injection). *)
val bernoulli_plan_xor : t -> plan -> int64 array -> int -> unit

(** A compiled three-draw Pauli channel (see {!pauli}). *)
type pauli_plan

val pauli_plan : px:float -> py:float -> pz:float -> pauli_plan

(** [pauli_plan_xor t pp ~x ~z off] — per lane [j], draw one word of
    Pauli errors and XOR its X/Z planes into [x.(off + j)] /
    [z.(off + j)]. *)
val pauli_plan_xor :
  t -> pauli_plan -> x:int64 array -> z:int64 array -> int -> unit
