module Bitvec = Gf2.Bitvec

(* Bit-sliced Pauli frame: one X word and one Z word per qubit, bit k
   of each word belonging to Monte-Carlo shot k.  Frame propagation
   through Clifford gates is the usual symplectic update, applied
   word-wise so all 64 shots advance per operation. *)

type t = { n : int; x : int64 array; z : int64 array }

let create n =
  if n < 1 then invalid_arg "Frame.Plane.create: n >= 1";
  { n; x = Array.make n 0L; z = Array.make n 0L }

let num_qubits t = t.n

let clear t =
  Array.fill t.x 0 t.n 0L;
  Array.fill t.z 0 t.n 0L

(* CNOT a→b: X copies control→target, Z copies target→control. *)
let cnot t a b =
  t.x.(b) <- Int64.logxor t.x.(b) t.x.(a);
  t.z.(a) <- Int64.logxor t.z.(a) t.z.(b)

(* H: swap the X and Z planes of the qubit. *)
let h t q =
  let xq = t.x.(q) in
  t.x.(q) <- t.z.(q);
  t.z.(q) <- xq

(* S: X → Y, i.e. the Z plane picks up the X plane. *)
let s_gate t q = t.z.(q) <- Int64.logxor t.z.(q) t.x.(q)

let xor_x t q w = t.x.(q) <- Int64.logxor t.x.(q) w
let xor_z t q w = t.z.(q) <- Int64.logxor t.z.(q) w
let get_x t q = t.x.(q)
let get_z t q = t.z.(q)

let parity_x t qubits =
  Array.fold_left (fun acc q -> Int64.logxor acc t.x.(q)) 0L qubits

let parity_z t qubits =
  Array.fold_left (fun acc q -> Int64.logxor acc t.z.(q)) 0L qubits

let depolarize t sampler ~qubits ~px ~py ~pz =
  Array.iter
    (fun q ->
      let xw, zw = Sampler.pauli sampler ~px ~py ~pz in
      xor_x t q xw;
      xor_z t q zw)
    qubits

let flip_x t sampler ~qubits ~p =
  Array.iter (fun q -> xor_x t q (Sampler.bernoulli sampler p)) qubits

let flip_z t sampler ~qubits ~p =
  Array.iter (fun q -> xor_z t q (Sampler.bernoulli sampler p)) qubits

let bit w k = Int64.logand (Int64.shift_right_logical w k) 1L = 1L

(* Transpose: one shot's view of a word array (word i holds bit
   position i across the 64 shots). *)
let shot_vec words k =
  let v = Bitvec.create (Array.length words) in
  Array.iteri (fun i w -> if bit w k then Bitvec.set v i true) words;
  v

let load_shot words k v =
  if Bitvec.length v <> Array.length words then
    invalid_arg "Frame.Plane.load_shot: length mismatch";
  let m = Int64.shift_left 1L k in
  Array.iteri
    (fun i w ->
      let w = Int64.logand w (Int64.lognot m) in
      words.(i) <- (if Bitvec.get v i then Int64.logor w m else w))
    words

let extract_shot t k =
  let x = Bitvec.create t.n and z = Bitvec.create t.n in
  for q = 0 to t.n - 1 do
    if bit t.x.(q) k then Bitvec.set x q true;
    if bit t.z.(q) k then Bitvec.set z q true
  done;
  Pauli.of_bits ~x ~z ()

let extract_shot_x t k =
  let x = Bitvec.create t.n in
  for q = 0 to t.n - 1 do
    if bit t.x.(q) k then Bitvec.set x q true
  done;
  x
