module Bitvec = Gf2.Bitvec

(* Bit-sliced Pauli frame: a tile of [lanes] X words and [lanes] Z
   words per qubit, bit k of lane j belonging to Monte-Carlo shot
   64·j + k of the tile.  Frame propagation through Clifford gates is
   the usual symplectic update, applied word-wise so all
   [width = 64·lanes] shots advance per operation.

   Storage is row-major: qubit q's lane j lives at index
   [q * lanes + j], so one qubit's tile is contiguous and the
   per-qubit gate loops run over adjacent words. *)

type t = { n : int; lanes : int; x : int64 array; z : int64 array }

let create ?(width = 64) n =
  if n < 1 then invalid_arg "Frame.Plane.create: n >= 1";
  if width < 64 || width mod 64 <> 0 then
    invalid_arg "Frame.Plane.create: width must be a positive multiple of 64";
  let lanes = width / 64 in
  { n; lanes; x = Array.make (n * lanes) 0L; z = Array.make (n * lanes) 0L }

let num_qubits t = t.n
let lanes t = t.lanes
let width t = 64 * t.lanes

let clear t =
  Array.fill t.x 0 (Array.length t.x) 0L;
  Array.fill t.z 0 (Array.length t.z) 0L

(* CNOT a→b: X copies control→target, Z copies target→control. *)
let cnot t a b =
  let l = t.lanes in
  let a0 = a * l and b0 = b * l in
  for j = 0 to l - 1 do
    t.x.(b0 + j) <- Int64.logxor t.x.(b0 + j) t.x.(a0 + j);
    t.z.(a0 + j) <- Int64.logxor t.z.(a0 + j) t.z.(b0 + j)
  done

(* H: swap the X and Z planes of the qubit. *)
let h t q =
  let l = t.lanes in
  let q0 = q * l in
  for j = 0 to l - 1 do
    let xq = t.x.(q0 + j) in
    t.x.(q0 + j) <- t.z.(q0 + j);
    t.z.(q0 + j) <- xq
  done

(* S: X → Y, i.e. the Z plane picks up the X plane. *)
let s_gate t q =
  let l = t.lanes in
  let q0 = q * l in
  for j = 0 to l - 1 do
    t.z.(q0 + j) <- Int64.logxor t.z.(q0 + j) t.x.(q0 + j)
  done

let check_lane t lane =
  if lane < 0 || lane >= t.lanes then
    invalid_arg "Frame.Plane: lane out of range"

let xor_x ?(lane = 0) t q w =
  check_lane t lane;
  t.x.((q * t.lanes) + lane) <- Int64.logxor t.x.((q * t.lanes) + lane) w

let xor_z ?(lane = 0) t q w =
  check_lane t lane;
  t.z.((q * t.lanes) + lane) <- Int64.logxor t.z.((q * t.lanes) + lane) w

let get_x ?(lane = 0) t q =
  check_lane t lane;
  t.x.((q * t.lanes) + lane)

let get_z ?(lane = 0) t q =
  check_lane t lane;
  t.z.((q * t.lanes) + lane)

let parity_lane rows lanes lane qubits =
  let acc = ref 0L in
  Array.iter
    (fun q -> acc := Int64.logxor !acc rows.((q * lanes) + lane))
    qubits;
  !acc

let parity_x ?(lane = 0) t qubits =
  check_lane t lane;
  parity_lane t.x t.lanes lane qubits

let parity_z ?(lane = 0) t qubits =
  check_lane t lane;
  parity_lane t.z t.lanes lane qubits

(* One whole syndrome-bit tile: for every lane, the X-plane parity
   over [x_sel] XOR the Z-plane parity over [z_sel], written to
   [dst.(off ..  off + lanes - 1)].  Lane-outer with an unboxed
   accumulator: one store per lane instead of one read-modify-write
   per selected qubit per lane (XOR commutes, so the value is
   unchanged). *)
let parity_check_into t ~x_sel ~z_sel dst off =
  let l = t.lanes in
  let nx = Array.length x_sel and nz = Array.length z_sel in
  for j = 0 to l - 1 do
    let acc = ref 0L in
    for i = 0 to nx - 1 do
      acc := Int64.logxor !acc t.x.((x_sel.(i) * l) + j)
    done;
    for i = 0 to nz - 1 do
      acc := Int64.logxor !acc t.z.((z_sel.(i) * l) + j)
    done;
    dst.(off + j) <- !acc
  done

(* Noise injection over compiled plans (see Sampler): one bulk
   sampling call XORs fresh fault words into every selected qubit of
   every lane — bit-identical to the per-qubit row calls it fuses. *)
let flip_x_plan t sampler ~qubits pl =
  Sampler.bernoulli_plan_xor_sel sampler pl t.x ~sel:qubits ~stride:t.lanes

let flip_z_plan t sampler ~qubits pl =
  Sampler.bernoulli_plan_xor_sel sampler pl t.z ~sel:qubits ~stride:t.lanes

let depolarize_plan t sampler ~qubits pp =
  let l = t.lanes in
  Array.iter
    (fun q -> Sampler.pauli_plan_xor sampler pp ~x:t.x ~z:t.z (q * l))
    qubits

let depolarize t sampler ~qubits ~px ~py ~pz =
  depolarize_plan t sampler ~qubits (Sampler.pauli_plan ~px ~py ~pz)

let flip_x t sampler ~qubits ~p = flip_x_plan t sampler ~qubits (Sampler.plan p)
let flip_z t sampler ~qubits ~p = flip_z_plan t sampler ~qubits (Sampler.plan p)

let blit_x t dst off = Array.blit t.x 0 dst off (t.n * t.lanes)
let blit_z t dst off = Array.blit t.z 0 dst off (t.n * t.lanes)

let bit w k = Int64.logand (Int64.shift_right_logical w k) 1L = 1L

(* Transpose: one shot's view of a word array (word i holds bit
   position i across the 64 shots). *)
let shot_vec words k =
  let v = Bitvec.create (Array.length words) in
  Array.iteri (fun i w -> if bit w k then Bitvec.set v i true) words;
  v

(* As [shot_vec] for lane [lane] of a row-major array of [lanes]-wide
   rows: bit i of the result is bit [k] of [rows.((pos + i) * lanes
   + lane)]. *)
let row_shot_vec rows ~lanes ~lane ~pos ~len k =
  let v = Bitvec.create len in
  for i = 0 to len - 1 do
    if bit rows.(((pos + i) * lanes) + lane) k then Bitvec.set v i true
  done;
  v

let load_shot words k v =
  if Bitvec.length v <> Array.length words then
    invalid_arg "Frame.Plane.load_shot: length mismatch";
  let m = Int64.shift_left 1L k in
  Array.iteri
    (fun i w ->
      let w = Int64.logand w (Int64.lognot m) in
      words.(i) <- (if Bitvec.get v i then Int64.logor w m else w))
    words

(* In-place 64x64 bit-matrix transpose of a.(off .. off+63), LSB-first
   column convention: afterwards bit i of a.(off + k) is what bit k of
   a.(off + i) was.  Recursive block swap (Hacker's Delight 7-3
   adapted to LSB-first): at each level j, swap the off-diagonal j x j
   sub-blocks of every aligned 2j x 2j block. *)
let transpose64 a off =
  let j = ref 32 in
  let m = ref 0xFFFFFFFFL in
  while !j <> 0 do
    let jj = !j and mm = !m in
    let k = ref 0 in
    while !k < 64 do
      let kk = !k in
      let x = a.(off + kk) and y = a.(off + kk + jj) in
      let t = Int64.logand (Int64.logxor (Int64.shift_right_logical x jj) y) mm in
      a.(off + kk) <- Int64.logxor x (Int64.shift_left t jj);
      a.(off + kk + jj) <- Int64.logxor y t;
      k := (kk + jj + 1) land lnot jj
    done;
    let j' = jj lsr 1 in
    j := j';
    if j' > 0 then m := Int64.logxor mm (Int64.shift_left mm j')
  done

(* Tile-at-a-time shot extraction: gather rows [pos, pos + nrows) of
   lane [lane] from row-major [src] and block-transpose them, so that
   afterwards [dst.(64 * d + k)] holds — for shot [k] of the lane —
   the bits of rows [pos + 64 * d .. pos + 64 * d + 63] (word [d] of
   shot [k]'s bitstring).  [dst] needs ceil(nrows / 64) * 64 slots;
   rows beyond [nrows] read as 0, so bitvector padding invariants are
   preserved when the words are written with [Bitvec.set_word]. *)
let transpose_rows ~src ~lanes ~lane ~pos ~nrows dst =
  let nblocks = (nrows + 63) / 64 in
  if Array.length dst < nblocks * 64 then
    invalid_arg "Frame.Plane.transpose_rows: dst too small";
  for d = 0 to nblocks - 1 do
    let base = d * 64 in
    for i = 0 to 63 do
      let r = base + i in
      dst.(base + i) <-
        (if r < nrows then src.(((pos + r) * lanes) + lane) else 0L)
    done;
    transpose64 dst base
  done

(* [shot_of_transposed dst ~len k] — shot [k]'s bitstring from a
   buffer prepared by {!transpose_rows} with [nrows = len]. *)
let shot_of_transposed dst ~len k =
  let v = Bitvec.create len in
  for d = 0 to ((len + 63) / 64) - 1 do
    Bitvec.set_word v d dst.((d * 64) + k)
  done;
  v

let transpose_x t ~lane dst =
  transpose_rows ~src:t.x ~lanes:t.lanes ~lane ~pos:0 ~nrows:t.n dst

let extract_shot t k =
  let lane = k lsr 6 and b = k land 63 in
  check_lane t lane;
  let x = Bitvec.create t.n and z = Bitvec.create t.n in
  for q = 0 to t.n - 1 do
    if bit t.x.((q * t.lanes) + lane) b then Bitvec.set x q true;
    if bit t.z.((q * t.lanes) + lane) b then Bitvec.set z q true
  done;
  Pauli.of_bits ~x ~z ()

let extract_shot_x t k =
  let lane = k lsr 6 and b = k land 63 in
  check_lane t lane;
  let x = Bitvec.create t.n in
  for q = 0 to t.n - 1 do
    if bit t.x.((q * t.lanes) + lane) b then Bitvec.set x q true
  done;
  x
