(* Word-level noise sampling for the bit-sliced engine.

   A sampler walks the raw outputs of one or more [Mc.Rng] keys — one
   key per 64-shot *lane* — by a shared position counter, so a word of
   randomness is a pure function of (key, position): the batch engine
   and its per-shot scalar cross-check replay the same call sequence
   and therefore see the very same noise, bit for bit.  Because every
   call consumes a number of positions that depends only on its
   probability argument (never on the lane count), lane [j] of a
   wide sampler draws exactly the words a single-lane sampler for the
   same key would draw — the basis of the cross-width bit-identity
   guarantee.

   Bernoulli(p) words come from the binary expansion of p: with
   p = 0.b1 b2 … (b1 most significant) and u1, u2, … independent
   uniform words, fold from the least significant digit up,
     acc ← if b then u lor acc else u land acc,
   which maps Bernoulli(t) to Bernoulli((b + t)/2) per step.  p is
   truncated to [digits] = 40 binary digits (absolute bias < 2^-40,
   orders of magnitude below any Monte-Carlo resolution here). *)

type t = { keys : Mc.Rng.key array; mutable pos : int }

let create key = { keys = [| key |]; pos = 0 }

let create_tile keys =
  if Array.length keys < 1 then
    invalid_arg "Frame.Sampler.create_tile: need >= 1 lane key";
  { keys = Array.copy keys; pos = 0 }

let lanes t = Array.length t.keys

let uniform t =
  let v = Mc.Rng.draw t.keys.(0) t.pos in
  t.pos <- t.pos + 1;
  v

let digits = 40

(* A compiled Bernoulli(p) digit plan: the clamped fixed-point digits
   of p and the lowest set digit (digits below it leave acc = 0 and
   are skipped).  The draw count [digits - start] is a function of p
   alone, so replaying the same call sequence consumes the same
   positions whatever the lane count. *)
type plan =
  | Zero
  | One
  | Digits of { scaled : int64; start : int }

let plan p =
  if p <= 0.0 then Zero
  else if p >= 1.0 then One
  else begin
    let scaled = Int64.of_float ((p *. 0x1p40) +. 0.5) in
    let scaled =
      if scaled <= 0L then 1L
      else if scaled >= 0x10000000000L then 0xFFFFFFFFFFL
      else scaled
    in
    let start =
      let rec lowest j =
        if Int64.logand (Int64.shift_right_logical scaled j) 1L = 1L then j
        else lowest (j + 1)
      in
      lowest 0
    in
    Digits { scaled; start }
  end

let plan_draws = function Zero | One -> 0 | Digits { start; _ } -> digits - start

(* The digit fold for one lane, reading positions [pos, pos + draws)
   of [key].  Delegated to the fused Rng primitive so the whole fold
   runs without per-digit calls or boxing. *)
let run_digits key pos scaled start =
  Mc.Rng.fold_digits key ~pos ~scaled ~start ~stop:digits

let run_plan key pos = function
  | Zero -> 0L
  | One -> -1L
  | Digits { scaled; start } -> run_digits key pos scaled start

let bernoulli_plan_into t pl dst off =
  let l = Array.length t.keys in
  (match pl with
  | Zero -> Array.fill dst off l 0L
  | One -> Array.fill dst off l (-1L)
  | Digits { scaled; start } ->
    let pos = t.pos in
    for j = 0 to l - 1 do
      dst.(off + j) <- run_digits t.keys.(j) pos scaled start
    done);
  t.pos <- t.pos + plan_draws pl

(* Whole-op noise injection: as calling [bernoulli_plan_xor] once per
   row of [sel] (in order) against [dst] offsets [sel.(i) * stride],
   but with the digit folds of each lane fused into one bulk Rng call
   — the hot path of compiled [Flip_x]/[Flip_z] ops. *)
let bernoulli_plan_xor_sel t pl dst ~sel ~stride =
  let l = Array.length t.keys in
  let n = Array.length sel in
  (match pl with
  | Zero -> ()
  | One ->
    for i = 0 to n - 1 do
      let r0 = sel.(i) * stride in
      for j = 0 to l - 1 do
        dst.(r0 + j) <- Int64.lognot dst.(r0 + j)
      done
    done
  | Digits { scaled; start } ->
    let pos = t.pos in
    for j = 0 to l - 1 do
      Mc.Rng.fold_digits_xor_sel t.keys.(j) ~pos ~scaled ~start ~stop:digits
        ~rows:dst ~sel ~stride ~off:j
    done);
  t.pos <- t.pos + (plan_draws pl * n)

let bernoulli_plan_xor t pl dst off =
  let l = Array.length t.keys in
  (match pl with
  | Zero -> ()
  | One -> for j = 0 to l - 1 do dst.(off + j) <- Int64.lognot dst.(off + j) done
  | Digits { scaled; start } ->
    let pos = t.pos in
    for j = 0 to l - 1 do
      dst.(off + j) <-
        Int64.logxor dst.(off + j) (run_digits t.keys.(j) pos scaled start)
    done);
  t.pos <- t.pos + plan_draws pl

let bernoulli t p =
  let pl = plan p in
  let v = run_plan t.keys.(0) t.pos pl in
  t.pos <- t.pos + plan_draws pl;
  v

(* Per-bit three-way Pauli choice as X/Z bit-planes: an error occurs
   with probability px+py+pz; conditioned on an error it has an X
   component with probability (px+py)/(px+py+pz), and given an X
   component it is a Y with probability py/(px+py).  All three draws
   are bitwise independent, so the construction is exact per shot.
   When px+py = 0 the conditional-Y probability is taken as 0, which
   consumes no draws — identical to skipping the draw outright. *)
type pauli_plan =
  | P_id
  | P_mix of { e : plan; hx : plan; y : plan }

let pauli_plan ~px ~py ~pz =
  let pt = px +. py +. pz in
  if pt <= 0.0 then P_id
  else
    P_mix
      {
        e = plan pt;
        hx = plan ((px +. py) /. pt);
        y = (if px +. py <= 0.0 then Zero else plan (py /. (px +. py)));
      }

let combine_pauli e hx y =
  let x = Int64.logand e hx in
  let z =
    Int64.logand e (Int64.logor (Int64.logand hx y) (Int64.lognot hx))
  in
  (x, z)

let pauli_plan_xor t pp ~x ~z off =
  match pp with
  | P_id -> ()
  | P_mix { e = pe; hx = ph; y = py_ } ->
    let l = Array.length t.keys in
    let pos = t.pos in
    let de = plan_draws pe in
    let dh = plan_draws ph in
    for j = 0 to l - 1 do
      let key = t.keys.(j) in
      let e = run_plan key pos pe in
      let hx = run_plan key (pos + de) ph in
      let y = run_plan key (pos + de + dh) py_ in
      let xw, zw = combine_pauli e hx y in
      x.(off + j) <- Int64.logxor x.(off + j) xw;
      z.(off + j) <- Int64.logxor z.(off + j) zw
    done;
    t.pos <- pos + de + dh + plan_draws py_

let pauli t ~px ~py ~pz =
  match pauli_plan ~px ~py ~pz with
  | P_id -> (0L, 0L)
  | P_mix { e = pe; hx = ph; y = py_ } ->
    let key = t.keys.(0) in
    let pos = t.pos in
    let de = plan_draws pe in
    let dh = plan_draws ph in
    let e = run_plan key pos pe in
    let hx = run_plan key (pos + de) ph in
    let y = run_plan key (pos + de + dh) py_ in
    t.pos <- pos + de + dh + plan_draws py_;
    combine_pauli e hx y
