(* Word-level noise sampling for the bit-sliced engine.

   A sampler walks the raw outputs of one [Mc.Rng] key by position, so
   a word of randomness is a pure function of (key, position): the
   batch engine and its per-shot scalar cross-check replay the same
   call sequence and therefore see the very same noise, bit for bit.

   Bernoulli(p) words come from the binary expansion of p: with
   p = 0.b1 b2 … (b1 most significant) and u1, u2, … independent
   uniform words, fold from the least significant digit up,
     acc ← if b then u lor acc else u land acc,
   which maps Bernoulli(t) to Bernoulli((b + t)/2) per step.  p is
   truncated to [digits] = 40 binary digits (absolute bias < 2^-40,
   orders of magnitude below any Monte-Carlo resolution here). *)

type t = { key : Mc.Rng.key; mutable pos : int }

let create key = { key; pos = 0 }

let uniform t =
  let v = Mc.Rng.draw t.key t.pos in
  t.pos <- t.pos + 1;
  v

let digits = 40

let bernoulli t p =
  if p <= 0.0 then 0L
  else if p >= 1.0 then -1L
  else begin
    let scaled = Int64.of_float ((p *. 0x1p40) +. 0.5) in
    let scaled =
      if scaled <= 0L then 1L
      else if scaled >= 0x10000000000L then 0xFFFFFFFFFFL
      else scaled
    in
    (* digits below the lowest set bit leave acc = 0 and can be
       skipped; the draw count is a function of p alone, so replaying
       the same call sequence consumes the same positions. *)
    let start =
      let rec lowest j =
        if Int64.logand (Int64.shift_right_logical scaled j) 1L = 1L then j
        else lowest (j + 1)
      in
      lowest 0
    in
    let acc = ref 0L in
    for j = start to digits - 1 do
      let u = uniform t in
      if Int64.logand (Int64.shift_right_logical scaled j) 1L = 1L then
        acc := Int64.logor u !acc
      else acc := Int64.logand u !acc
    done;
    !acc
  end

(* Per-bit three-way Pauli choice as X/Z bit-planes: an error occurs
   with probability px+py+pz; conditioned on an error it has an X
   component with probability (px+py)/(px+py+pz), and given an X
   component it is a Y with probability py/(px+py).  All three draws
   are bitwise independent, so the construction is exact per shot. *)
let pauli t ~px ~py ~pz =
  let pt = px +. py +. pz in
  if pt <= 0.0 then (0L, 0L)
  else begin
    let e = bernoulli t pt in
    let hx = bernoulli t ((px +. py) /. pt) in
    let y_given_x =
      if px +. py <= 0.0 then 0L else bernoulli t (py /. (px +. py))
    in
    let x = Int64.logand e hx in
    let z =
      Int64.logand e
        (Int64.logor (Int64.logand hx y_given_x) (Int64.lognot hx))
    in
    (x, z)
  end
