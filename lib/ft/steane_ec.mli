(** Steane-style fault-tolerant error correction (§3.2–§3.4, Figs. 9
    and 10) for the 7-qubit code.

    The bit-flip syndrome is read by XOR-ing the data block
    transversally into an ancilla block prepared in the *Steane state*
    (Eq. 17, the uniform superposition of all Hamming codewords =
    |+̄⟩) and measuring the ancilla destructively: the Hamming
    syndrome of the measured word is the data's X-error syndrome,
    while the word itself is a uniformly random codeword revealing
    nothing about the encoded data.  The phase-flip syndrome is read
    in the rotated frame: an ancilla in |0̄⟩ is used as the *source*
    of transversal XORs into the data (Fig. 5 identity) and measured
    in the X basis.  Only 14 ancilla qubits and 14 XORs per double
    syndrome — versus 24 for the Shor method (§3.2).

    Ancilla blocks are verified against correlated bit-flip errors
    before use (§3.3): a second encoded |0̄⟩ is XOR-ed from the block
    under test and destructively measured; any Hamming-check anomaly
    rejects the block ([Reject] policy), or the paper's
    flip-on-confirmed-|1̄⟩ variant can be chosen ([Paper_flip]). *)

type verify_policy =
  | Reject  (** discard and re-prepare on any verification anomaly *)
  | Paper_flip
      (** §3.3: classify the measured block as |0̄⟩/|1̄⟩ after
          classical correction; flip the block under test when two
          verification rounds agree on |1̄⟩; on disagreement do
          nothing *)
  | No_verification  (** non-fault-tolerant baseline *)

(** [prepare_zero_verified sim ~block ~checker ~verify ~max_attempts]
    leaves a (verified) encoded |0̄⟩ on the 7 qubits at offset
    [block], using the 7 qubits at [checker] as the measured block. *)
val prepare_zero_verified :
  Sim.t -> block:int -> checker:int -> verify:verify_policy -> max_attempts:int -> unit

(** [prepare_plus_verified] — same, then transversal H (the Steane
    state / |+̄⟩). *)
val prepare_plus_verified :
  Sim.t -> block:int -> checker:int -> verify:verify_policy -> max_attempts:int -> unit

(** [bit_syndrome_once sim ~data ~ancilla ~checker ~verify] prepares a
    verified |+̄⟩ on [ancilla], XORs the data in, measures, and
    returns the 3-bit Hamming syndrome of the data's X errors. *)
val bit_syndrome_once :
  Sim.t -> data:int -> ancilla:int -> checker:int -> verify:verify_policy -> Gf2.Bitvec.t

(** [phase_syndrome_once] — dual round (Z errors), ancilla |0̄⟩ as XOR
    source, X-basis readout. *)
val phase_syndrome_once :
  Sim.t -> data:int -> ancilla:int -> checker:int -> verify:verify_policy -> Gf2.Bitvec.t

type policy = Accept_first | Repeat_if_nontrivial

(** [recover sim ~policy ~verify ~data ~ancilla ~checker] is one full
    EC cycle per Fig. 9: bit-flip syndrome (repeated per [policy]),
    correction, then phase-flip syndrome and correction.  Returns the
    number of syndrome rounds executed. *)
val recover :
  Sim.t ->
  policy:policy ->
  verify:verify_policy ->
  data:int ->
  ancilla:int ->
  checker:int ->
  int

(** Total scratch qubits this gadget needs beyond the data block
    (ancilla block + checker block). *)
val scratch_qubits : int

(** [syndrome_extraction_circuit ()] — one full (bit + phase)
    syndrome extraction as a fixed circuit over data qubits 0–6 and an
    ancilla block 7–13 (ancilla encoding included, verification and
    adaptivity omitted), for schedule/depth accounting: under the §6
    maximal-parallelism assumption its {!Circuit.depth} is what a
    resting qubit waits per EC cycle, versus {!Circuit.gate_count} for
    strictly serial hardware. *)
val syndrome_extraction_circuit : unit -> Circuit.t
