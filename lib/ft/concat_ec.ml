module Bitvec = Gf2.Bitvec
module Code = Codes.Stabilizer_code
module Hamming = Codes.Hamming

(* Layout: the 49-qubit data block at [data]; [scratch] = 112 qubits:
   level-2 ancilla block (49), level-2 checker block (49), then a
   14-qubit level-1 scratch area shared by all inner EC cycles. *)
let scratch_qubits = 112

let anc2 scratch = scratch
let checker2 scratch = scratch + 49
let l1_anc scratch = scratch + 98
let l1_checker scratch = scratch + 105

let inner_policy = Steane_ec.Repeat_if_nontrivial
let inner_verify = Steane_ec.Reject

let inner_ec_block sim ~block ~scratch =
  ignore
    (Steane_ec.recover sim ~policy:inner_policy ~verify:inner_verify
       ~data:block ~ancilla:(l1_anc scratch) ~checker:(l1_checker scratch))

let inner_ec sim ~data ~scratch =
  for b = 0 to 6 do
    inner_ec_block sim ~block:(data + (7 * b)) ~scratch
  done

(* Play the Fig. 3 encoder at the logical level: every outer gate is
   its transversal (7-physical-gate) implementation. *)
let outer_encode sim ~block =
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Gate (Circuit.H q) ->
        Transversal.logical_h sim ~block:(block + (7 * q))
      | Circuit.Gate (Circuit.Cnot (a, b)) ->
        Transversal.logical_cnot sim
          ~control:(block + (7 * a))
          ~target:(block + (7 * b))
      | Circuit.Gate _ | Circuit.Tick | Circuit.Measure _
      | Circuit.Measure_x _ | Circuit.Reset _ | Circuit.Cond _
      | Circuit.Cond_parity _ ->
        invalid_arg "Concat_ec: unexpected encoder instruction")
    (Circuit.instrs (Codes.Steane.encoding_circuit ()))

let encode_zero_l2_raw sim ~block ~scratch =
  for b = 0 to 6 do
    Steane_ec.prepare_zero_verified sim
      ~block:(block + (7 * b))
      ~checker:(l1_anc scratch) ~verify:inner_verify ~max_attempts:50
  done;
  outer_encode sim ~block

(* Hierarchical decode of 49 measured bits: Hamming-correct each inner
   word to a logical bit, then Hamming-correct the 7 logical bits.
   Returns (value, outer syndrome was nonzero). *)
let decode_l2_bits bits =
  let outer = Bitvec.create 7 in
  for b = 0 to 6 do
    let w = Bitvec.create 7 in
    for i = 0 to 6 do
      if bits.((7 * b) + i) then Bitvec.set w i true
    done;
    let corrected, _ = Hamming.decode w in
    if Bitvec.weight corrected mod 2 = 1 then Bitvec.set outer b true
  done;
  let anomaly = not (Bitvec.is_zero (Hamming.syndrome outer)) in
  let corrected, _ = Hamming.decode outer in
  (Bitvec.weight corrected mod 2 = 1, anomaly)

let measure_block49 sim ~block ~basis_x =
  Array.init 49 (fun i ->
      if basis_x then Sim.measure_x sim (block + i)
      else Sim.measure sim (block + i))

let measure_logical_z_destructive_l2 sim ~block =
  fst (decode_l2_bits (measure_block49 sim ~block ~basis_x:false))

let prepare_zero_l2 sim ~block ~scratch ~max_attempts =
  let rec attempt k =
    if k > max_attempts then
      failwith "Concat_ec.prepare_zero_l2: verification kept failing";
    encode_zero_l2_raw sim ~block ~scratch;
    inner_ec sim ~data:block ~scratch;
    (* verification copy, destructively compared *)
    encode_zero_l2_raw sim ~block:(checker2 scratch) ~scratch;
    for i = 0 to 48 do
      Sim.cnot sim (block + i) (checker2 scratch + i)
    done;
    let value, anomaly =
      decode_l2_bits (measure_block49 sim ~block:(checker2 scratch) ~basis_x:false)
    in
    if anomaly || value then attempt (k + 1)
  in
  attempt 1

(* outer syndrome of one round; [bit_round] = X-error detection *)
let outer_syndrome_once sim ~data ~scratch ~max_attempts ~bit_round =
  prepare_zero_l2 sim ~block:(anc2 scratch) ~scratch ~max_attempts;
  if bit_round then begin
    (* |+̄⟩₂ ancilla as XOR target, Z readout *)
    for b = 0 to 6 do
      Transversal.logical_h sim ~block:(anc2 scratch + (7 * b))
    done;
    for i = 0 to 48 do
      Sim.cnot sim (data + i) (anc2 scratch + i)
    done
  end
  else
    (* |0̄⟩₂ ancilla as XOR source, X readout *)
    for i = 0 to 48 do
      Sim.cnot sim (anc2 scratch + i) (data + i)
    done;
  let bits = measure_block49 sim ~block:(anc2 scratch) ~basis_x:(not bit_round) in
  let outer = Bitvec.create 7 in
  for b = 0 to 6 do
    let w = Bitvec.create 7 in
    for i = 0 to 6 do
      if bits.((7 * b) + i) then Bitvec.set w i true
    done;
    let corrected, _ = Hamming.decode w in
    if Bitvec.weight corrected mod 2 = 1 then Bitvec.set outer b true
  done;
  Hamming.syndrome outer

let apply_outer_correction sim ~data ~bit_round position =
  (* transversal weight-3 inner logical operator on the indicated
     inner block *)
  let logical =
    if bit_round then Codes.Steane.logical_x_weight3
    else Codes.Steane.logical_z_weight3
  in
  let block = data + (7 * position) in
  for q = 0 to 6 do
    match Pauli.letter logical q with
    | Pauli.I -> ()
    | Pauli.X -> Sim.x sim (block + q)
    | Pauli.Z -> Sim.z sim (block + q)
    | Pauli.Y -> Sim.y sim (block + q)
  done

let position_of_syndrome s =
  let v =
    (if Bitvec.get s 0 then 4 else 0)
    + (if Bitvec.get s 1 then 2 else 0)
    + if Bitvec.get s 2 then 1 else 0
  in
  if v = 0 then None else Some (v - 1)

let outer_side sim ~data ~scratch ~max_attempts ~bit_round =
  let s1 = outer_syndrome_once sim ~data ~scratch ~max_attempts ~bit_round in
  if not (Bitvec.is_zero s1) then begin
    let s2 = outer_syndrome_once sim ~data ~scratch ~max_attempts ~bit_round in
    if Bitvec.equal s1 s2 then
      match position_of_syndrome s2 with
      | Some p -> apply_outer_correction sim ~data ~bit_round p
      | None -> ()
  end

let recover_l2 sim ~data ~scratch ~max_attempts =
  inner_ec sim ~data ~scratch;
  outer_side sim ~data ~scratch ~max_attempts ~bit_round:true;
  outer_side sim ~data ~scratch ~max_attempts ~bit_round:false

(* ------------------------------------------------------------------ *)
(* E17 driver                                                          *)

let steane = Codes.Steane.code
let level2 = lazy (Codes.Concat.steane_level 2)
let css_decoder_l1 = lazy (Codes.Steane.css_decoder ())

let project_eigenstate tab ~total ~plus_basis code ~offset =
  Array.iter
    (fun g ->
      ignore
        (Tableau.postselect_pauli tab
           (Code.embed code ~offset ~total g)
           ~outcome:false))
    code.Code.generators;
  let l =
    if plus_basis then code.Code.logical_x.(0) else code.Code.logical_z.(0)
  in
  ignore
    (Tableau.postselect_pauli tab (Code.embed code ~offset ~total l)
       ~outcome:false)

(* Noise-free hierarchical recovery + logical readout of a level-2
   block living at offset 0 of the simulator's register. *)
let ideal_judge_l2 sim ~plus_basis =
  let tab = Sim.tableau sim in
  let rng = Sim.rng sim in
  let total = Sim.num_qubits sim in
  let code2 = Lazy.force level2 in
  let d1 = Lazy.force css_decoder_l1 in
  (* inner recovery per block: generators 6b .. 6b+5 *)
  for b = 0 to 6 do
    let s = Bitvec.create 6 in
    for i = 0 to 5 do
      let g =
        Code.embed code2 ~offset:0 ~total code2.Code.generators.((6 * b) + i)
      in
      if Tableau.measure_pauli_rng tab rng g then Bitvec.set s i true
    done;
    match Code.decode d1 s with
    | Some c when Pauli.weight c > 0 ->
      Tableau.apply_pauli tab (Code.embed steane ~offset:(7 * b) ~total c)
    | Some _ | None -> ()
  done;
  (* outer recovery: generators 42..47 decode like a Steane syndrome
     whose corrections are inner logical operators *)
  let s = Bitvec.create 6 in
  for i = 0 to 5 do
    let g = Code.embed code2 ~offset:0 ~total code2.Code.generators.(42 + i) in
    if Tableau.measure_pauli_rng tab rng g then Bitvec.set s i true
  done;
  (match Code.decode d1 s with
  | Some c when Pauli.weight c > 0 ->
    for p = 0 to 6 do
      let lift logical =
        Tableau.apply_pauli tab (Code.embed steane ~offset:(7 * p) ~total logical)
      in
      (match Pauli.letter c p with
      | Pauli.I -> ()
      | Pauli.X -> lift steane.Code.logical_x.(0)
      | Pauli.Z -> lift steane.Code.logical_z.(0)
      | Pauli.Y ->
        lift steane.Code.logical_x.(0);
        lift steane.Code.logical_z.(0))
    done
  | Some _ | None -> ());
  let op =
    if plus_basis then code2.Code.logical_x.(0) else code2.Code.logical_z.(0)
  in
  Tableau.measure_pauli_rng tab rng (Code.embed code2 ~offset:0 ~total op)

let one_trial ~noise ~level rng t =
  let plus_basis = t mod 2 = 0 in
  match level with
  | 1 ->
    let sim = Sim.create ~n:21 ~noise rng in
    project_eigenstate (Sim.tableau sim) ~total:21 ~plus_basis steane
      ~offset:0;
    ignore
      (Steane_ec.recover sim ~policy:inner_policy ~verify:inner_verify
         ~data:0 ~ancilla:7 ~checker:14);
    if plus_basis then Sim.ideal_measure_logical_x sim steane ~offset:0
    else Sim.ideal_measure_logical_z sim steane ~offset:0
  | 2 ->
    let code2 = Lazy.force level2 in
    let sim = Sim.create ~n:(49 + scratch_qubits) ~noise rng in
    project_eigenstate (Sim.tableau sim) ~total:(49 + scratch_qubits)
      ~plus_basis code2 ~offset:0;
    recover_l2 sim ~data:0 ~scratch:49 ~max_attempts:50;
    ideal_judge_l2 sim ~plus_basis
  | _ -> invalid_arg "Concat_ec: level must be 1 or 2"

let logical_failure_rate ~noise ~level ~trials rng =
  let failures = ref 0 in
  for t = 1 to trials do
    if one_trial ~noise ~level rng t then incr failures
  done;
  (!failures, trials)

let logical_failure_rate_par ?domains ?obs ~noise ~level ~trials ~seed () =
  let f =
    Mc.Runner.failures ?domains ?obs ~trials ~seed
      (Mc.Runner.scalar (fun rng i -> one_trial ~noise ~level rng i))
  in
  (f, trials)
