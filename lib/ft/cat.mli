(** Verified cat-state preparation (§3.3, Fig. 8).

    A w-qubit cat state (|0…0⟩ + |1…1⟩)/√2 is built with a Hadamard
    and a CNOT chain.  A single fault inside the chain can leave two
    bit-flip errors — which become two *phase* errors after the
    Hadamards that turn the cat into a Shor state, and would feed back
    into the data (§3.1).  But every such fault makes the first and
    last cat bits disagree, so XOR-ing both ends into a check ancilla
    and measuring it catches the bad preparations; on failure the cat
    is discarded and rebuilt. *)

(** [prepare sim ~qubits ~check ~max_attempts] prepares a verified cat
    on [qubits] (in order: chain head first), using [check] as the
    verification ancilla.  Returns the number of attempts used.
    Raises [Failure] after [max_attempts] consecutive rejections
    (probability O(ε^max_attempts)). *)
val prepare : Sim.t -> qubits:int list -> check:int -> max_attempts:int -> int

(** [prepare_unverified sim ~qubits] builds the cat with no check —
    the non-fault-tolerant baseline. *)
val prepare_unverified : Sim.t -> qubits:int list -> unit
