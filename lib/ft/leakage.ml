type t = {
  s : Sim.t;
  leak_rate : float;
  rng : Random.State.t;
  flags : bool array;
}

let create ~n ~noise ~leak_rate rng =
  { s = Sim.create ~n ~noise rng; leak_rate; rng; flags = Array.make n false }

let sim t = t.s
let leaked t q = t.flags.(q)
let leak t q = t.flags.(q) <- true

let maybe_leak t q =
  if t.leak_rate > 0.0 && Random.State.float t.rng 1.0 < t.leak_rate then
    t.flags.(q) <- true

let gate1 f t q =
  if not t.flags.(q) then f t.s q;
  maybe_leak t q

let h = gate1 Sim.h
let x = gate1 Sim.x
let z = gate1 Sim.z

let cnot t a b =
  if not (t.flags.(a) || t.flags.(b)) then Sim.cnot t.s a b;
  maybe_leak t a;
  maybe_leak t b

let measure t q = if t.flags.(q) then false else Sim.measure t.s q

let detect t ~data ~ancilla =
  (* ancilla |0⟩; XOR data→ancilla; NOT data; XOR; NOT back.  For an
     unleaked data qubit the ancilla accumulates b ⊕ (1⊕b) = 1; a
     leaked qubit leaves it at 0. *)
  t.flags.(ancilla) <- false;
  Sim.prepare_zero t.s ancilla;
  cnot t data ancilla;
  x t data;
  cnot t data ancilla;
  x t data;
  not (measure t ancilla)

let replace t q =
  t.flags.(q) <- false;
  Sim.prepare_zero t.s q

let scrub t ~qubits ~ancilla =
  List.fold_left
    (fun repaired q ->
      if detect t ~data:q ~ancilla then begin
        replace t q;
        repaired + 1
      end
      else repaired)
    0 qubits
