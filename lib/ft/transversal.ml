module Bitvec = Gf2.Bitvec

let each7 f =
  for i = 0 to 6 do
    f i
  done

let logical_x sim ~block = each7 (fun i -> Sim.x sim (block + i))

let logical_x_w3 sim ~block =
  let lx = Codes.Steane.logical_x_weight3 in
  each7 (fun i -> if Pauli.letter lx i <> Pauli.I then Sim.x sim (block + i))

let logical_z sim ~block = each7 (fun i -> Sim.z sim (block + i))
let logical_h sim ~block = each7 (fun i -> Sim.h sim (block + i))

(* odd codewords have weight ≡ 3 (mod 4): bitwise P⁻¹ gives the phase
   i^{-3} = i on |1̄⟩, i.e. the logical P. *)
let logical_s sim ~block = each7 (fun i -> Sim.sdg sim (block + i))

let logical_cnot sim ~control ~target =
  each7 (fun i -> Sim.cnot sim (control + i) (target + i))

let logical_measure_z_destructive sim ~block =
  let w = Bitvec.create 7 in
  each7 (fun i -> if Sim.measure sim (block + i) then Bitvec.set w i true);
  let corrected, _ = Codes.Hamming.decode w in
  Bitvec.weight corrected mod 2 = 1

let weight3_support logical =
  List.filter
    (fun i -> Pauli.letter logical i <> Pauli.I)
    (List.init 7 Fun.id)

let majority outcomes =
  let ones = List.length (List.filter Fun.id outcomes) in
  2 * ones > List.length outcomes

let logical_measure_z_nondestructive sim ~block ~ancilla ~repetitions =
  let support = weight3_support Codes.Steane.logical_z_weight3 in
  let round () =
    Sim.prepare_zero sim ancilla;
    List.iter (fun q -> Sim.cnot sim (block + q) ancilla) support;
    Sim.measure sim ancilla
  in
  majority (List.init repetitions (fun _ -> round ()))

let logical_measure_x_nondestructive sim ~block ~ancilla ~repetitions =
  let support = weight3_support Codes.Steane.logical_x_weight3 in
  let round () =
    Sim.prepare_plus sim ancilla;
    List.iter (fun q -> Sim.cnot sim ancilla (block + q)) support;
    Sim.measure_x sim ancilla
  in
  majority (List.init repetitions (fun _ -> round ()))
