(** Shor's fault-tolerant Toffoli construction (§4.1, Figs. 12–13),
    demonstrated exactly on the state-vector simulator.

    The construction has two stages: (1) prepare the 3-qubit ancilla
    |A⟩ = ½ Σ_{a,b} |a, b, ab⟩ (Eq. 23) by measuring the observable
    Z_AB = (−1)^{ab+c} on |+++⟩ with a control qubit (Fig. 12) and
    flipping the third qubit when the |B⟩ branch is found; (2)
    teleport the gate (Eq. 27): XOR the ancilla into the data, XOR the
    data's target into the ancilla, Hadamard the old target, measure
    all three data qubits and apply the Fig. 13 Pauli/CNOT/CZ fixups.
    The original data qubits are destroyed; the ancilla qubits become
    the new data (the paper's "what were initially the ancilla blocks
    become the new data blocks").

    The unencoded construction acts on 7 qubits; {!encoded} runs the
    very same teleportation transversally on three Steane blocks
    (21 qubits) with logical measurements, given a perfect encoded
    |Ā⟩, confirming the construction is transversal-compatible. *)

(** [prepare_ancilla_a sv rng ~a ~b ~c ~control] prepares |A⟩ on
    qubits [a], [b], [c] of [sv] (which must start in |0⟩ there),
    using [control] as the measurement control qubit.  Returns the
    number of Z_AB measurement repetitions used (the measurement is
    repeated until two consecutive outcomes agree, per the paper). *)
val prepare_ancilla_a :
  Statevec.t -> Random.State.t -> a:int -> b:int -> c:int -> control:int -> int

(** [teleport sv rng ~ancilla:(a,b,c) ~data:(x,y,z)] consumes a
    prepared |A⟩ and the three data qubits; afterwards qubits
    [a], [b], [c] hold Toffoli|x,y,z⟩ and [x], [y], [z] are collapsed
    leftovers.  Returns the three measurement outcomes. *)
val teleport :
  Statevec.t ->
  Random.State.t ->
  ancilla:int * int * int ->
  data:int * int * int ->
  bool * bool * bool

(** [apply sv rng ~data:(x,y,z) ~scratch:(a,b,c) ~control] — full FT
    Toffoli: prepares |A⟩ on scratch, teleports, then SWAPs the result
    back onto the data qubits so callers see an in-place Toffoli. *)
val apply :
  Statevec.t ->
  Random.State.t ->
  data:int * int * int ->
  scratch:int * int * int ->
  control:int ->
  unit

(** [transversal_ingredients_check rng] verifies, exactly on the
    state-vector simulator, every encoded ingredient the Fig. 13
    construction uses transversally on Steane blocks: bitwise CNOT
    implements the logical XOR, bitwise CZ the logical CZ, bitwise H
    the logical Hadamard (on arbitrary encoded states, 14 qubits), and
    destructive logical measurement returns the right parity.  The
    six-block encoded circuit itself (42 qubits) is beyond exact
    state-vector reach; since the gadget is exactly the unencoded
    {!teleport} with every gate replaced by its verified transversal
    counterpart, these checks plus {!teleport}'s exactness establish
    the encoded construction. *)
val transversal_ingredients_check : Random.State.t -> bool
