(** Monte-Carlo logical-memory experiments (E1, E2, E4, E5).

    The methodology exploits that the whole §6 noise model is Pauli
    noise on Clifford circuits: a trial prepares a *perfect* encoded
    state, runs the noisy gadget under test, then judges the block
    noiselessly (ideal recovery + logical readout).  A trial fails
    when the readout disagrees with the prepared eigenvalue.  Both
    |0̄⟩ (sensitive to X̄ failures) and |+̄⟩ (Z̄ failures) are run;
    reported failure rates average the two bases. *)

(** The library's single estimate record, {!Mc.Stats.estimate}
    (failures, trials, rate, binomial stderr, Wilson CI), re-exported
    so existing field accesses keep compiling. *)
type estimate = Mc.Stats.estimate = {
  failures : int;
  trials : int;
  rate : float;
  stderr : float;
  ci_low : float;
  ci_high : float;
}

val estimate : failures:int -> trials:int -> estimate

(** Every experiment below comes in two forms: the legacy sequential
    one driven by a caller-supplied [Random.State.t], and an [_mc]
    form on the shared {!Mc.Runner} engine — trials fan out over
    OCaml 5 domains ([?domains], default
    [Mc.Runner.default_domains ()]), per-trial RNG streams are split
    deterministically from [seed], and the returned
    {!Mc.Stats.estimate} (with Wilson interval) is bit-identical for
    any domain count.  Each [_mc] form also takes [?obs:Obs.t]
    (default {!Obs.none}) and forwards it to the runner, which records
    per-run telemetry without perturbing results. *)

(** [unencoded ~eps ~trials rng] — E1 baseline: one bare qubit, one
    depolarizing step of strength [eps] (X/Y/Z each eps/3), judged in
    both bases; failure rate ≈ 2ε/3 per basis. *)
val unencoded : eps:float -> trials:int -> Random.State.t -> estimate

val unencoded_mc :
  ?domains:int -> ?obs:Obs.t -> eps:float -> trials:int -> seed:int -> unit ->
  Mc.Stats.estimate

(** [encoded_ideal_ec code ~eps ~rounds ~trials rng] — E1: every qubit
    of the block suffers a depolarizing step of strength [eps], then a
    *flawless* recovery is performed, [rounds] times; failure is a
    logical flip at the end.  Reproduces F = 1 − O(ε²) (§2). *)
val encoded_ideal_ec :
  Codes.Stabilizer_code.t ->
  eps:float ->
  rounds:int ->
  trials:int ->
  Random.State.t ->
  estimate

val encoded_ideal_ec_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  Codes.Stabilizer_code.t ->
  eps:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [shor_ec_failure ~noise ~policy ~verified ~trials rng] — E2: one
    noisy Shor-style EC cycle on a perfect Steane block; judged
    ideally afterwards. *)
val shor_ec_failure :
  noise:Noise.t ->
  policy:Shor_ec.policy ->
  verified:bool ->
  trials:int ->
  Random.State.t ->
  estimate

val shor_ec_failure_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  noise:Noise.t ->
  policy:Shor_ec.policy ->
  verified:bool ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [steane_ec_failure ~noise ~policy ~verify ~trials rng] — E2/E4
    with the Steane gadget. *)
val steane_ec_failure :
  noise:Noise.t ->
  policy:Steane_ec.policy ->
  verify:Steane_ec.verify_policy ->
  trials:int ->
  Random.State.t ->
  estimate

val steane_ec_failure_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  noise:Noise.t ->
  policy:Steane_ec.policy ->
  verify:Steane_ec.verify_policy ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [logical_cnot_exrec_failure ~noise ~trials rng] — E5: the extended
    rectangle of one transversal logical CNOT between two Steane
    blocks, each followed by a Steane EC cycle; failure if either
    block is logically corrupted.  The level-1 failure rate p₁(ε)
    fitted to A·ε² yields the pseudo-threshold ε* = 1/A. *)
val logical_cnot_exrec_failure :
  noise:Noise.t -> trials:int -> Random.State.t -> estimate

val logical_cnot_exrec_failure_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  noise:Noise.t ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [fit_quadratic points] — least squares A from p ≈ A·ε² over
    (ε, p) points (through the origin, weights 1/ε²: fits p/ε²). *)
val fit_quadratic : (float * float) list -> float
