module Code = Codes.Stabilizer_code
module Bitvec = Gf2.Bitvec

type t = {
  s : Sim.t;
  gadget : Css_ec.t;
  blocks : int;
  n : int;
  ancilla : int;
  checker : int;
  policy : Css_ec.policy;
  s_supported : bool;
  z_support : Bitvec.t; (* support of Z̄, for destructive readout *)
}

let block_offset t i = t.n * i

(* Check, on a noise-free tableau, that bitwise P⁻¹ implements the
   logical phase gate: S̄|+̄⟩ must be stabilized by Ȳ = i·X̄·Z̄. *)
let check_transversal_s (code : Code.t) =
  let tab = Code.prepare_logical_plus code in
  for q = 0 to code.Code.n - 1 do
    Tableau.sdg tab q
  done;
  let y_bar =
    Pauli.mul_phase (Pauli.mul code.Code.logical_x.(0) code.Code.logical_z.(0)) 1
  in
  Tableau.expectation tab y_bar = Some true

let create ?(policy = Css_ec.Repeat_if_nontrivial) ~gadget ~blocks ~noise rng =
  if blocks < 1 then invalid_arg "Css_logical.create: need a block";
  if not (Css_ec.self_dual gadget) then
    invalid_arg "Css_logical.create: gadget's code is not self-dual";
  let code = Css_ec.code gadget in
  let n = code.Code.n in
  let ancilla = n * blocks in
  let checker = ancilla + n in
  let s = Sim.create ~n:(checker + n) ~noise rng in
  let t =
    { s;
      gadget;
      blocks;
      n;
      ancilla;
      checker;
      policy;
      s_supported = check_transversal_s code;
      z_support = Pauli.z_bits code.Code.logical_z.(0) }
  in
  for i = 0 to blocks - 1 do
    Css_ec.prepare_zero_verified s gadget ~block:(block_offset t i)
      ~checker:t.checker ~max_attempts:50
  done;
  t

let num_blocks t = t.blocks
let code t = Css_ec.code t.gadget
let sim t = t.s

let check_block t i =
  if i < 0 || i >= t.blocks then invalid_arg "Css_logical: block out of range"

let ec t i =
  check_block t i;
  ignore
    (Css_ec.recover t.s t.gadget ~policy:t.policy ~data:(block_offset t i)
       ~ancilla:t.ancilla ~checker:t.checker ~max_attempts:50)

let apply_logical t i op =
  let base = block_offset t i in
  for q = 0 to t.n - 1 do
    match Pauli.letter op q with
    | Pauli.I -> ()
    | Pauli.X -> Sim.x t.s (base + q)
    | Pauli.Y -> Sim.y t.s (base + q)
    | Pauli.Z -> Sim.z t.s (base + q)
  done

let x t i =
  check_block t i;
  apply_logical t i (code t).Code.logical_x.(0);
  ec t i

let z t i =
  check_block t i;
  apply_logical t i (code t).Code.logical_z.(0);
  ec t i

let h t i =
  check_block t i;
  let base = block_offset t i in
  for q = 0 to t.n - 1 do
    Sim.h t.s (base + q)
  done;
  ec t i

let s t i =
  check_block t i;
  if not t.s_supported then
    invalid_arg "Css_logical.s: bitwise P⁻¹ is not a logical P for this code";
  let base = block_offset t i in
  for q = 0 to t.n - 1 do
    Sim.sdg t.s (base + q)
  done;
  ec t i

let cnot t ~control ~target =
  check_block t control;
  check_block t target;
  if control = target then invalid_arg "Css_logical.cnot: same block";
  let cb = block_offset t control and tb = block_offset t target in
  for q = 0 to t.n - 1 do
    Sim.cnot t.s (cb + q) (tb + q)
  done;
  ec t control;
  ec t target

let measure_z t i =
  check_block t i;
  let base = block_offset t i in
  let w = Bitvec.create t.n in
  for q = 0 to t.n - 1 do
    if Sim.measure t.s (base + q) then Bitvec.set w q true
  done;
  match Css_ec.classical_correct_bit_word t.gadget w with
  | Some corrected -> Bitvec.dot corrected t.z_support
  | None ->
    (* syndrome beyond the classical decoder: read the raw pairing *)
    Bitvec.dot w t.z_support

let prepare_zero t i =
  check_block t i;
  Css_ec.prepare_zero_verified t.s t.gadget ~block:(block_offset t i)
    ~checker:t.checker ~max_attempts:50

let ideal_z t i =
  check_block t i;
  Sim.ideal_measure_logical_z t.s (code t) ~offset:(block_offset t i)

let ideal_x t i =
  check_block t i;
  Sim.ideal_measure_logical_x t.s (code t) ~offset:(block_offset t i)
