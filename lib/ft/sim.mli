(** Noisy stabilizer executor: wraps a {!Tableau.t} with the §6 fault
    model so that gadgets are written as ordinary OCaml control flow
    (loops, retries, adaptive syndrome decisions) over noisy
    primitives.  Faults are exact Pauli injections — stabilizer
    simulation makes the §6 model exact, not approximate. *)

type t

(** [create_rng ~n ~noise rng] allocates [n] qubits in |0…0⟩.
    [Mc.Rng.t] is the library's single randomness interface. *)
val create_rng : n:int -> noise:Noise.t -> Mc.Rng.t -> t

(** [create ~n ~noise rng] — compatibility wrapper: the state is
    wrapped with [Mc.Rng.of_random_state] (shared, not copied), so
    draws are bit-identical to the pre-unification behaviour. *)
val create : n:int -> noise:Noise.t -> Random.State.t -> t

val num_qubits : t -> int
val noise : t -> Noise.t

(** The simulator's randomness stream (feed it to
    [Tableau.*_rng] for noise-free judgment steps). *)
val rng : t -> Mc.Rng.t

(** [tableau sim] exposes the underlying state for *noise-free*
    verification steps (ideal decoding, logical readout).  Mutating it
    directly bypasses the fault model. *)
val tableau : t -> Tableau.t

(** [gate_count sim] / [fault_count sim] — executed gate operations and
    injected faults so far. *)
val gate_count : t -> int

val fault_count : t -> int

(** Noisy one-qubit gates. *)
val h : t -> int -> unit

val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val s_gate : t -> int -> unit
val sdg : t -> int -> unit

(** Noisy two-qubit gates. *)
val cnot : t -> int -> int -> unit

val cz : t -> int -> int -> unit

(** [cy sim c t] — controlled-Y (one two-qubit fault location, used
    when measuring generators of non-CSS codes such as the 5-qubit
    code). *)
val cy : t -> int -> int -> unit

(** [apply_gate sim g] dispatches a circuit gate through the noisy
    primitives (Toffoli unsupported — not Clifford). *)
val apply_gate : t -> Circuit.gate -> unit

(** [run_circuit sim c ~offset] plays a circuit's unitary gates
    noisily with qubit [i] mapped to [offset + i]; measurements and
    classical control are not supported here (gadgets do their own
    adaptive measurement). *)
val run_circuit : t -> Circuit.t -> offset:int -> unit

(** [measure sim q] — noisy destructive Z measurement: the true
    outcome is computed, then reported flipped with probability
    [meas].  The collapse uses the true outcome. *)
val measure : t -> int -> bool

(** [measure_x sim q] — noisy X-basis measurement. *)
val measure_x : t -> int -> bool

(** [prepare_zero sim q] / [prepare_plus sim q] — noisy fresh-state
    preparation (reset, then orthogonal with probability [prep]). *)
val prepare_zero : t -> int -> unit

val prepare_plus : t -> int -> unit

(** [tick sim qs] — one storage time step on the listed qubits. *)
val tick : t -> int list -> unit

(** [inject sim p] — force a specific Pauli fault (for failure
    injection tests). *)
val inject : t -> Pauli.t -> unit

(** {1 Deterministic fault locations}

    Every execution of a noisy primitive is a {e fault location} in
    the §5–§6 sense; a hook installed with {!set_location_hook} is
    consulted at each one, in execution order, and may deposit a
    specific fault there.  This is the machinery for exhaustive
    single-fault enumeration (the paper's §5 fault-tolerance
    criterion; cf. fault-path counting, Van Rynbach et al.,
    1212.0845): {!record_locations} dry-runs a gadget to list its
    locations, then one fresh run per (location, fault) pair injects
    exactly that fault via {!inject_at}.  The hook draws no
    randomness and, when it returns [None], leaves the noise model
    untouched — so with the same seed, the prefix before an injected
    fault is identical to the clean run. *)

type loc_kind =
  | Gate1 of int  (** after a one-qubit gate on [q] *)
  | Gate2 of int * int  (** after a two-qubit gate on [(a, b)] *)
  | Prep of int  (** after a fresh-state preparation of [q] *)
  | Meas of int  (** on the reported outcome of measuring [q] *)
  | Store of int  (** one storage step on a resting [q] *)

type fault =
  | Pauli1 of Pauli.letter  (** X/Y/Z at a [Gate1]/[Store] location *)
  | Pauli2 of Pauli.letter * Pauli.letter
      (** one of the 15 nontrivial pairs at a [Gate2] location *)
  | Flip
      (** orthogonal preparation at [Prep]; outcome flip at [Meas] *)

(** [faults_of_kind k] — every fault the §6 model can deposit at a
    location of kind [k] (3 for [Gate1]/[Store], 15 for [Gate2], 1
    for [Prep]/[Meas]). *)
val faults_of_kind : loc_kind -> fault list

(** [set_location_hook sim h] — install ([Some]) or remove ([None])
    the location hook and reset the location counter.  With a hook
    installed, each noisy-primitive execution calls [h loc kind]; a
    [Some fault] return injects that fault (which must match the
    location kind, else [Invalid_argument]) {e instead of} the random
    noise-model draw at that site. *)
val set_location_hook : t -> (int -> loc_kind -> fault option) option -> unit

(** [locations sim] — locations visited since the hook was
    installed. *)
val locations : t -> int

(** [record_locations sim f] — run [f ()] under a purely recording
    hook; returns [f]'s result and the visited locations in execution
    order.  The previous hook is restored (removed) after. *)
val record_locations : t -> (unit -> 'a) -> 'a * loc_kind array

(** [inject_at sim ~location fault] — install a hook that deposits
    [fault] at location index [location] and nothing anywhere else. *)
val inject_at : t -> location:int -> fault -> unit

(** [ideal_measure_logical_z sim code ~offset] /
    [ideal_measure_logical_x sim code ~offset] — noise-free logical
    readout of a code block living at [offset]: runs an ideal recovery
    (syndrome + correction via the code's default decoder) and then
    measures the logical operator, all without injecting faults.
    Used as the experiment's final judgment. *)
val ideal_measure_logical_z :
  t -> Codes.Stabilizer_code.t -> offset:int -> bool

val ideal_measure_logical_x :
  t -> Codes.Stabilizer_code.t -> offset:int -> bool
