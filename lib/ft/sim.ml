module Code = Codes.Stabilizer_code

(* A fault location is one execution of a noisy primitive; its kind
   determines which faults the §6 model can deposit there.  Locations
   are numbered (and the hook consulted) only while a hook is
   installed, so the Monte-Carlo hot path pays one [None] match per
   primitive and nothing else. *)
type loc_kind =
  | Gate1 of int
  | Gate2 of int * int
  | Prep of int
  | Meas of int
  | Store of int

type fault =
  | Pauli1 of Pauli.letter
  | Pauli2 of Pauli.letter * Pauli.letter
  | Flip

type t = {
  tab : Tableau.t;
  noise : Noise.t;
  rng : Mc.Rng.t;
  mutable gates : int;
  mutable faults : int;
  mutable locs : int;
  mutable hook : (int -> loc_kind -> fault option) option;
}

let create_rng ~n ~noise rng =
  { tab = Tableau.create n; noise; rng; gates = 0; faults = 0; locs = 0;
    hook = None }

(* Compatibility wrapper: the wrapped state is shared, not copied, so
   draws interleave exactly as before the Rng unification. *)
let create ~n ~noise rng = create_rng ~n ~noise (Mc.Rng.of_random_state rng)

let num_qubits sim = Tableau.num_qubits sim.tab
let noise sim = sim.noise
let rng sim = sim.rng
let tableau sim = sim.tab
let gate_count sim = sim.gates
let fault_count sim = sim.faults

let letters = [| Pauli.X; Pauli.Y; Pauli.Z |]

(* ------------------------------------------ fault-location machinery *)

let set_location_hook sim hook =
  sim.hook <- hook;
  sim.locs <- 0

let locations sim = sim.locs

(* Consult the hook at one fault site.  The injected fault draws no
   randomness and the noise probabilities are unchanged on [None], so
   the execution prefix before an injected fault is identical to the
   unhooked run with the same seed — exactly what deterministic
   fault-path enumeration (Van Rynbach et al., 1212.0845) needs. *)
let site sim kind =
  match sim.hook with
  | None -> None
  | Some f ->
    let loc = sim.locs in
    sim.locs <- sim.locs + 1;
    f loc kind

let faults_of_kind = function
  | Gate1 _ | Store _ -> [ Pauli1 Pauli.X; Pauli1 Pauli.Y; Pauli1 Pauli.Z ]
  | Gate2 _ ->
    (* the 15 nontrivial two-qubit Paulis *)
    let ls = [ Pauli.I; Pauli.X; Pauli.Y; Pauli.Z ] in
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a = Pauli.I && b = Pauli.I then None else Some (Pauli2 (a, b)))
          ls)
      ls
  | Prep _ | Meas _ -> [ Flip ]

let bad_fault kind =
  let k =
    match kind with
    | Gate1 _ -> "Gate1"
    | Gate2 _ -> "Gate2"
    | Prep _ -> "Prep"
    | Meas _ -> "Meas"
    | Store _ -> "Store"
  in
  invalid_arg (Printf.sprintf "Sim: fault shape invalid at a %s location" k)

let inject_pauli1 sim kind q = function
  | Pauli1 l when l <> Pauli.I ->
    sim.faults <- sim.faults + 1;
    Tableau.apply_pauli sim.tab (Pauli.single (num_qubits sim) q l)
  | _ -> bad_fault kind

let inject_pauli2 sim kind a b = function
  | Pauli2 (la, lb) when not (la = Pauli.I && lb = Pauli.I) ->
    sim.faults <- sim.faults + 1;
    let n = num_qubits sim in
    let p1 = if la = Pauli.I then Pauli.identity n else Pauli.single n a la in
    let p2 = if lb = Pauli.I then Pauli.identity n else Pauli.single n b lb in
    Tableau.apply_pauli sim.tab (Pauli.mul p1 p2)
  | _ -> bad_fault kind

(* ------------------------------------------------- noisy primitives *)

let fault1 sim q p =
  if p > 0.0 && Mc.Rng.float sim.rng 1.0 < p then begin
    sim.faults <- sim.faults + 1;
    let l = letters.(Mc.Rng.int sim.rng 3) in
    Tableau.apply_pauli sim.tab (Pauli.single (num_qubits sim) q l)
  end

let fault2 sim a b p =
  if p > 0.0 && Mc.Rng.float sim.rng 1.0 < p then begin
    sim.faults <- sim.faults + 1;
    (* one of the 15 nontrivial two-qubit Paulis, uniformly *)
    let k = 1 + Mc.Rng.int sim.rng 15 in
    let la = k / 4 and lb = k mod 4 in
    let n = num_qubits sim in
    let p1 =
      if la = 0 then Pauli.identity n else Pauli.single n a letters.(la - 1)
    in
    let p2 =
      if lb = 0 then Pauli.identity n else Pauli.single n b letters.(lb - 1)
    in
    Tableau.apply_pauli sim.tab (Pauli.mul p1 p2)
  end

let gate1 f sim q =
  sim.gates <- sim.gates + 1;
  f sim.tab q;
  match site sim (Gate1 q) with
  | None -> fault1 sim q sim.noise.Noise.gate1
  | Some fault -> inject_pauli1 sim (Gate1 q) q fault

let h = gate1 Tableau.h
let x = gate1 Tableau.x
let y = gate1 Tableau.y
let z = gate1 Tableau.z
let s_gate = gate1 Tableau.s_gate
let sdg = gate1 Tableau.sdg

let gate2 f sim a b =
  sim.gates <- sim.gates + 1;
  f sim.tab a b;
  match site sim (Gate2 (a, b)) with
  | None -> fault2 sim a b sim.noise.Noise.gate2
  | Some fault -> inject_pauli2 sim (Gate2 (a, b)) a b fault

let cnot = gate2 Tableau.cnot
let cz = gate2 Tableau.cz
let cy = gate2 Tableau.cy

let apply_gate sim = function
  | Circuit.H q -> h sim q
  | Circuit.X q -> x sim q
  | Circuit.Y q -> y sim q
  | Circuit.Z q -> z sim q
  | Circuit.S q -> s_gate sim q
  | Circuit.Sdg q -> sdg sim q
  | Circuit.Cnot (c, t) -> cnot sim c t
  | Circuit.Cz (a, b) -> cz sim a b
  | Circuit.Swap (a, b) ->
    cnot sim a b;
    cnot sim b a;
    cnot sim a b
  | Circuit.Toffoli _ -> invalid_arg "Sim.apply_gate: Toffoli"

let run_circuit sim c ~offset =
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Gate g ->
        apply_gate sim (Circuit.map_gate_qubits (fun q -> q + offset) g)
      | Circuit.Tick -> ()
      | Circuit.Measure _ | Circuit.Measure_x _ | Circuit.Reset _
      | Circuit.Cond _ | Circuit.Cond_parity _ ->
        invalid_arg "Sim.run_circuit: only unitary gates supported")
    (Circuit.instrs c)

let flip_with sim p outcome =
  if p > 0.0 && Mc.Rng.float sim.rng 1.0 < p then begin
    sim.faults <- sim.faults + 1;
    not outcome
  end
  else outcome

let meas_site sim q true_outcome =
  match site sim (Meas q) with
  | None -> flip_with sim sim.noise.Noise.meas true_outcome
  | Some Flip ->
    sim.faults <- sim.faults + 1;
    not true_outcome
  | Some _ -> bad_fault (Meas q)

let measure sim q =
  sim.gates <- sim.gates + 1;
  let true_outcome = Tableau.measure_rng sim.tab sim.rng q in
  meas_site sim q true_outcome

let measure_x sim q =
  sim.gates <- sim.gates + 1;
  let true_outcome = Tableau.measure_x_rng sim.tab sim.rng q in
  meas_site sim q true_outcome

(* A prep fault deposits the orthogonal state (§6): the site's [Flip]
   applies the flip appropriate to the prepared basis. *)
let prep_site sim q ~flip =
  match site sim (Prep q) with
  | None ->
    if
      sim.noise.Noise.prep > 0.0
      && Mc.Rng.float sim.rng 1.0 < sim.noise.Noise.prep
    then begin
      sim.faults <- sim.faults + 1;
      flip sim.tab q
    end
  | Some Flip ->
    sim.faults <- sim.faults + 1;
    flip sim.tab q
  | Some _ -> bad_fault (Prep q)

let prepare_zero sim q =
  sim.gates <- sim.gates + 1;
  Tableau.reset_rng sim.tab sim.rng q;
  prep_site sim q ~flip:Tableau.x

let prepare_plus sim q =
  sim.gates <- sim.gates + 1;
  Tableau.reset_rng sim.tab sim.rng q;
  Tableau.h sim.tab q;
  prep_site sim q ~flip:Tableau.z

let tick sim qs =
  List.iter
    (fun q ->
      match site sim (Store q) with
      | None -> fault1 sim q sim.noise.Noise.store
      | Some fault -> inject_pauli1 sim (Store q) q fault)
    qs

let inject sim p =
  sim.faults <- sim.faults + 1;
  Tableau.apply_pauli sim.tab p

(* [record_locations sim f] — dry-run [f] with a recording hook and
   return its result plus every location visited, in execution order.
   Valid as an enumeration of the hooked run's locations because the
   hook draws no randomness: with the same seed, a later injection run
   visits the same locations (up to the injected fault, after which
   adaptive gadget branches may diverge — which is fine, the fault is
   already placed). *)
let record_locations sim f =
  let acc = ref [] in
  set_location_hook sim
    (Some
       (fun _ k ->
         acc := k :: !acc;
         None));
  Fun.protect
    ~finally:(fun () -> set_location_hook sim None)
    (fun () ->
      let r = f () in
      (r, Array.of_list (List.rev !acc)))

let inject_at sim ~location fault =
  set_location_hook sim
    (Some (fun loc _ -> if loc = location then Some fault else None))

let ideal_logical measure_op sim (code : Code.t) ~offset =
  let n = num_qubits sim in
  (* recover ideally: measure every (embedded) generator, decode, fix *)
  let syndrome = Gf2.Bitvec.create (Array.length code.Code.generators) in
  Array.iteri
    (fun i g ->
      let g' = Code.embed code ~offset ~total:n g in
      if Tableau.measure_pauli_rng sim.tab sim.rng g' then
        Gf2.Bitvec.set syndrome i true)
    code.Code.generators;
  let decoder = Code.default_decoder code in
  (match Code.decode decoder syndrome with
  | Some c when Pauli.weight c > 0 ->
    Tableau.apply_pauli sim.tab (Code.embed code ~offset ~total:n c)
  | Some _ | None -> ());
  let op = Code.embed code ~offset ~total:n measure_op in
  Tableau.measure_pauli_rng sim.tab sim.rng op

let ideal_measure_logical_z sim code ~offset =
  ideal_logical code.Code.logical_z.(0) sim code ~offset

let ideal_measure_logical_x sim code ~offset =
  ideal_logical code.Code.logical_x.(0) sim code ~offset
