module Code = Codes.Stabilizer_code

type t = {
  tab : Tableau.t;
  noise : Noise.t;
  rng : Mc.Rng.t;
  mutable gates : int;
  mutable faults : int;
}

let create_rng ~n ~noise rng =
  { tab = Tableau.create n; noise; rng; gates = 0; faults = 0 }

(* Compatibility wrapper: the wrapped state is shared, not copied, so
   draws interleave exactly as before the Rng unification. *)
let create ~n ~noise rng = create_rng ~n ~noise (Mc.Rng.of_random_state rng)

let num_qubits sim = Tableau.num_qubits sim.tab
let noise sim = sim.noise
let rng sim = sim.rng
let tableau sim = sim.tab
let gate_count sim = sim.gates
let fault_count sim = sim.faults

let letters = [| Pauli.X; Pauli.Y; Pauli.Z |]

let fault1 sim q p =
  if p > 0.0 && Mc.Rng.float sim.rng 1.0 < p then begin
    sim.faults <- sim.faults + 1;
    let l = letters.(Mc.Rng.int sim.rng 3) in
    Tableau.apply_pauli sim.tab (Pauli.single (num_qubits sim) q l)
  end

let fault2 sim a b p =
  if p > 0.0 && Mc.Rng.float sim.rng 1.0 < p then begin
    sim.faults <- sim.faults + 1;
    (* one of the 15 nontrivial two-qubit Paulis, uniformly *)
    let k = 1 + Mc.Rng.int sim.rng 15 in
    let la = k / 4 and lb = k mod 4 in
    let n = num_qubits sim in
    let p1 =
      if la = 0 then Pauli.identity n else Pauli.single n a letters.(la - 1)
    in
    let p2 =
      if lb = 0 then Pauli.identity n else Pauli.single n b letters.(lb - 1)
    in
    Tableau.apply_pauli sim.tab (Pauli.mul p1 p2)
  end

let gate1 f sim q =
  sim.gates <- sim.gates + 1;
  f sim.tab q;
  fault1 sim q sim.noise.Noise.gate1

let h = gate1 Tableau.h
let x = gate1 Tableau.x
let y = gate1 Tableau.y
let z = gate1 Tableau.z
let s_gate = gate1 Tableau.s_gate
let sdg = gate1 Tableau.sdg

let gate2 f sim a b =
  sim.gates <- sim.gates + 1;
  f sim.tab a b;
  fault2 sim a b sim.noise.Noise.gate2

let cnot = gate2 Tableau.cnot
let cz = gate2 Tableau.cz
let cy = gate2 Tableau.cy

let apply_gate sim = function
  | Circuit.H q -> h sim q
  | Circuit.X q -> x sim q
  | Circuit.Y q -> y sim q
  | Circuit.Z q -> z sim q
  | Circuit.S q -> s_gate sim q
  | Circuit.Sdg q -> sdg sim q
  | Circuit.Cnot (c, t) -> cnot sim c t
  | Circuit.Cz (a, b) -> cz sim a b
  | Circuit.Swap (a, b) ->
    cnot sim a b;
    cnot sim b a;
    cnot sim a b
  | Circuit.Toffoli _ -> invalid_arg "Sim.apply_gate: Toffoli"

let run_circuit sim c ~offset =
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Gate g ->
        apply_gate sim (Circuit.map_gate_qubits (fun q -> q + offset) g)
      | Circuit.Tick -> ()
      | Circuit.Measure _ | Circuit.Measure_x _ | Circuit.Reset _
      | Circuit.Cond _ | Circuit.Cond_parity _ ->
        invalid_arg "Sim.run_circuit: only unitary gates supported")
    (Circuit.instrs c)

let flip_with sim p outcome =
  if p > 0.0 && Mc.Rng.float sim.rng 1.0 < p then begin
    sim.faults <- sim.faults + 1;
    not outcome
  end
  else outcome

let measure sim q =
  sim.gates <- sim.gates + 1;
  let true_outcome = Tableau.measure_rng sim.tab sim.rng q in
  flip_with sim sim.noise.Noise.meas true_outcome

let measure_x sim q =
  sim.gates <- sim.gates + 1;
  let true_outcome = Tableau.measure_x_rng sim.tab sim.rng q in
  flip_with sim sim.noise.Noise.meas true_outcome

let prepare_zero sim q =
  sim.gates <- sim.gates + 1;
  Tableau.reset_rng sim.tab sim.rng q;
  if
    sim.noise.Noise.prep > 0.0
    && Mc.Rng.float sim.rng 1.0 < sim.noise.Noise.prep
  then begin
    sim.faults <- sim.faults + 1;
    Tableau.x sim.tab q
  end

let prepare_plus sim q =
  sim.gates <- sim.gates + 1;
  Tableau.reset_rng sim.tab sim.rng q;
  Tableau.h sim.tab q;
  if
    sim.noise.Noise.prep > 0.0
    && Mc.Rng.float sim.rng 1.0 < sim.noise.Noise.prep
  then begin
    sim.faults <- sim.faults + 1;
    Tableau.z sim.tab q
  end

let tick sim qs = List.iter (fun q -> fault1 sim q sim.noise.Noise.store) qs

let inject sim p =
  sim.faults <- sim.faults + 1;
  Tableau.apply_pauli sim.tab p

let ideal_logical measure_op sim (code : Code.t) ~offset =
  let n = num_qubits sim in
  (* recover ideally: measure every (embedded) generator, decode, fix *)
  let syndrome = Gf2.Bitvec.create (Array.length code.Code.generators) in
  Array.iteri
    (fun i g ->
      let g' = Code.embed code ~offset ~total:n g in
      if Tableau.measure_pauli_rng sim.tab sim.rng g' then
        Gf2.Bitvec.set syndrome i true)
    code.Code.generators;
  let decoder = Code.default_decoder code in
  (match Code.decode decoder syndrome with
  | Some c when Pauli.weight c > 0 ->
    Tableau.apply_pauli sim.tab (Code.embed code ~offset ~total:n c)
  | Some _ | None -> ());
  let op = Code.embed code ~offset ~total:n measure_op in
  Tableau.measure_pauli_rng sim.tab sim.rng op

let ideal_measure_logical_z sim code ~offset =
  ideal_logical code.Code.logical_z.(0) sim code ~offset

let ideal_measure_logical_x sim code ~offset =
  ideal_logical code.Code.logical_x.(0) sim code ~offset
