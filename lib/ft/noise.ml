type t = {
  gate1 : float;
  gate2 : float;
  prep : float;
  meas : float;
  store : float;
}

let none = { gate1 = 0.; gate2 = 0.; prep = 0.; meas = 0.; store = 0. }
let uniform e = { gate1 = e; gate2 = e; prep = e; meas = e; store = e }
let gates_only e = { none with gate1 = e; gate2 = e; prep = e; meas = e }
let storage_only e = { none with store = e }

let pp fmt n =
  Format.fprintf fmt
    "{gate1=%.2e; gate2=%.2e; prep=%.2e; meas=%.2e; store=%.2e}" n.gate1
    n.gate2 n.prep n.meas n.store
