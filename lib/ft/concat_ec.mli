(** Circuit-level error correction for the level-2 concatenated Steane
    code (§5, Fig. 14): 49 physical qubits per logical block, with the
    full fault-tolerant machinery at both levels.

    A level-2 recovery runs the level-1 gadget ({!Steane_ec}) on each
    of the seven inner blocks, then extracts the *outer* syndrome
    through level-2 encoded ancillas: a verified |0̄⟩₂/|+̄⟩₂ block is
    built by preparing seven verified inner |0̄⟩ blocks, playing the
    Fig. 3 encoder transversally at the logical level (every outer
    gate is 7 physical gates, the §5 "quantum data processing carried
    out at all levels simultaneously"), and comparing destructively
    against a second copy with a *hierarchical* classical decode —
    inner Hamming correction per 7-bit word, then Hamming correction
    across the seven decoded logical bits.

    This is the machinery behind the flow equation p₂ = A·p₁²: below
    the level-1 pseudo-threshold a level-2 block out-performs a
    level-1 block, above it concatenation hurts (E17). *)

(** Physical-qubit layout requirement: [data] is a 49-qubit block;
    [scratch] points at 112 further qubits (level-2 ancilla block,
    level-2 checker block, and a 14-qubit level-1 scratch area). *)
val scratch_qubits : int

(** [prepare_zero_l2 sim ~block ~scratch ~max_attempts] — verified
    encoded |0̄⟩₂ on the 49 qubits at [block]. *)
val prepare_zero_l2 :
  Sim.t -> block:int -> scratch:int -> max_attempts:int -> unit

(** [inner_ec sim ~data ~scratch] — one level-1 EC cycle on each of
    the seven inner blocks. *)
val inner_ec : Sim.t -> data:int -> scratch:int -> unit

(** [recover_l2 sim ~data ~scratch ~max_attempts] — one full level-2
    EC cycle: inner EC on all sub-blocks, then outer bit- and
    phase-syndrome rounds (§3.4 repeat rule at the outer level), with
    outer corrections applied as transversal inner logical
    operators. *)
val recover_l2 : Sim.t -> data:int -> scratch:int -> max_attempts:int -> unit

(** [measure_logical_z_destructive_l2 sim ~block] — measure all 49
    qubits and decode hierarchically; robust to any single inner-block
    failure. *)
val measure_logical_z_destructive_l2 : Sim.t -> block:int -> bool

(** [logical_failure_rate ~noise ~level ~trials rng] — the E17 driver:
    prepare a perfect level-[level] (1 or 2) encoded eigenstate
    (both bases alternately), run one noisy EC cycle at that level,
    judge ideally.  Returns (failures, trials). *)
val logical_failure_rate :
  noise:Noise.t -> level:int -> trials:int -> Random.State.t -> int * int

(** [logical_failure_rate_par ?domains ?obs ~noise ~level ~trials
    ~seed ()] — same experiment fanned out across OCaml 5 domains via
    {!Mc.Runner} (each level-2 trial simulates 161 qubits, so the
    wall-clock win is nearly linear in cores). *)
val logical_failure_rate_par :
  ?domains:int ->
  ?obs:Obs.t ->
  noise:Noise.t ->
  level:int ->
  trials:int ->
  seed:int ->
  unit ->
  int * int
