(** Multicore Monte-Carlo harness — compatibility front for
    {!Mc.Runner}.

    Trials run on the shared engine: fixed-size chunks, one split RNG
    stream per chunk, dynamic chunk claiming across OCaml 5 domains.
    Counts are bit-identical for any [domains] value (the historical
    behaviour — per-worker streams — made them depend on the worker
    layout).  The per-trial function must be self-contained — build
    your own simulator inside it; domains share nothing. *)

val default_domains : unit -> int

(** [failures ~domains ~trials ~seed trial] — run [trial rng i] for
    i = 0..trials−1 and count [true] results.  [domains] defaults to
    [Mc.Runner.default_domains ()]; [domains = 1] runs inline (no
    spawning) and produces the same count as any other setting. *)
val failures :
  ?domains:int ->
  trials:int ->
  seed:int ->
  (Random.State.t -> int -> bool) ->
  int

(** [estimate ~domains ~trials ~seed trial] — same, as
    (failures, trials, rate). *)
val estimate :
  ?domains:int ->
  trials:int ->
  seed:int ->
  (Random.State.t -> int -> bool) ->
  int * int * float
