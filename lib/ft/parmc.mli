(** Multicore Monte-Carlo harness (OCaml 5 domains).

    Trials are split evenly across [domains] worker domains, each with
    its own independently seeded RNG (derived deterministically from
    the caller's seed, so a run is reproducible for a fixed domain
    count).  The per-trial function must be self-contained — build
    your own simulator inside it; domains share nothing. *)

(** [failures ~domains ~trials ~seed trial] — run [trial rng i] for
    i = 0..trials−1 and count [true] results.  [domains] defaults to
    [Domain.recommended_domain_count ()] capped at 8; [domains = 1]
    runs inline (no spawning). *)
val failures :
  ?domains:int ->
  trials:int ->
  seed:int ->
  (Random.State.t -> int -> bool) ->
  int

(** [estimate ~domains ~trials ~seed trial] — same, as
    (failures, trials, rate). *)
val estimate :
  ?domains:int ->
  trials:int ->
  seed:int ->
  (Random.State.t -> int -> bool) ->
  int * int * float
