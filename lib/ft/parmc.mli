(** Deprecated compatibility front for {!Mc.Runner}.

    Every entry point delegates directly to the shared engine; the
    historical per-worker seeding (and this module's own defaulting
    logic) is gone.  Call {!Mc.Runner} in new code. *)

val default_domains : unit -> int
[@@ocaml.deprecated "Use Mc.Runner.default_domains."]

(** [failures ~domains ~trials ~seed trial] — identical to
    [Mc.Runner.failures]. *)
val failures :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int ->
  (Random.State.t -> int -> bool) ->
  int
[@@ocaml.deprecated "Use Mc.Runner.failures."]

(** [estimate ~domains ~trials ~seed trial] — same, as
    (failures, trials, rate); [Mc.Runner.estimate] returns the richer
    [Mc.Stats.estimate]. *)
val estimate :
  ?domains:int ->
  trials:int ->
  seed:int ->
  (Random.State.t -> int -> bool) ->
  int * int * float
[@@ocaml.deprecated "Use Mc.Runner.estimate."]
