type t = {
  s : Sim.t;
  blocks : int;
  ancilla : int;
  checker : int;
  meas_anc : int;
  policy : Steane_ec.policy;
  verify : Steane_ec.verify_policy;
}

let block_offset i = 7 * i

let create ?(policy = Steane_ec.Repeat_if_nontrivial)
    ?(verify = Steane_ec.Reject) ~blocks ~noise rng =
  if blocks < 1 then invalid_arg "Logical.create: need at least one block";
  let ancilla = 7 * blocks in
  let checker = ancilla + 7 in
  let meas_anc = checker + 7 in
  let s = Sim.create ~n:(meas_anc + 1) ~noise rng in
  let t = { s; blocks; ancilla; checker; meas_anc; policy; verify } in
  for i = 0 to blocks - 1 do
    Steane_ec.prepare_zero_verified s ~block:(block_offset i) ~checker:t.checker
      ~verify ~max_attempts:50
  done;
  t

let num_blocks t = t.blocks
let sim t = t.s

let check_block t i =
  if i < 0 || i >= t.blocks then invalid_arg "Logical: block out of range"

let ec t i =
  check_block t i;
  ignore
    (Steane_ec.recover t.s ~policy:t.policy ~verify:t.verify
       ~data:(block_offset i) ~ancilla:t.ancilla ~checker:t.checker)

let gate1 g t i =
  check_block t i;
  g t.s ~block:(block_offset i);
  ec t i

let x = gate1 Transversal.logical_x
let z = gate1 Transversal.logical_z
let h = gate1 Transversal.logical_h
let s = gate1 Transversal.logical_s

let cnot t ~control ~target =
  check_block t control;
  check_block t target;
  if control = target then invalid_arg "Logical.cnot: same block";
  Transversal.logical_cnot t.s ~control:(block_offset control)
    ~target:(block_offset target);
  ec t control;
  ec t target

let measure_z t i =
  check_block t i;
  Transversal.logical_measure_z_destructive t.s ~block:(block_offset i)

let measure_z_nondestructive t i =
  check_block t i;
  Transversal.logical_measure_z_nondestructive t.s ~block:(block_offset i)
    ~ancilla:t.meas_anc ~repetitions:3

let prepare_zero t i =
  check_block t i;
  Steane_ec.prepare_zero_verified t.s ~block:(block_offset i)
    ~checker:t.checker ~verify:t.verify ~max_attempts:50

let ideal_z t i =
  check_block t i;
  Sim.ideal_measure_logical_z t.s Codes.Steane.code ~offset:(block_offset i)

let ideal_x t i =
  check_block t i;
  Sim.ideal_measure_logical_x t.s Codes.Steane.code ~offset:(block_offset i)
