module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat
module Code = Codes.Stabilizer_code

type policy = Accept_first | Repeat_if_nontrivial

type t = {
  code : Code.t;
  hx : Mat.t;
  hz : Mat.t;
  circuit_z : Circuit.t; (* prepares |rowspace H_Z⟩ *)
  circuit_x : Circuit.t; (* prepares |rowspace H_X⟩ *)
  kz : Mat.t; (* membership check for rowspace H_Z *)
  kx : Mat.t; (* membership check for rowspace H_X *)
  decode_z : Bitvec.t -> Bitvec.t option; (* bit-flip side *)
  decode_x : Bitvec.t -> Bitvec.t option; (* phase-flip side *)
}

let make ?(max_weight = 1) ~code ~hx ~hz () =
  let n = code.Code.n in
  if Mat.cols hx <> n || Mat.cols hz <> n then
    invalid_arg "Css_ec.make: check width mismatch";
  { code;
    hx;
    hz;
    circuit_z = Codes.Css.superposition_circuit hz;
    circuit_x = Codes.Css.superposition_circuit hx;
    kz = Mat.of_rows (Mat.kernel hz);
    kx = Mat.of_rows (Mat.kernel hx);
    decode_z = Codes.Css.classical_decoder ~checks:hz ~n ~max_weight;
    decode_x = Codes.Css.classical_decoder ~checks:hx ~n ~max_weight }

let for_steane () =
  make ~code:Codes.Steane.code ~hx:Codes.Hamming.parity_check
    ~hz:Codes.Hamming.parity_check ()

let for_shor9 () =
  make ~code:Codes.Shor9.code ~hx:Codes.Shor9.hx ~hz:Codes.Shor9.hz ()

let for_reed_muller () =
  make ~code:Codes.More_codes.reed_muller15 ~hx:Codes.More_codes.reed_muller_hx
    ~hz:Codes.More_codes.reed_muller_hz ()

let for_golay () =
  make ~max_weight:3 ~code:Codes.Golay.code ~hx:Codes.Golay.parity_check
    ~hz:Codes.Golay.parity_check ()

let code t = t.code
let scratch_qubits t = 2 * t.code.Code.n
let self_dual t = Mat.equal t.hx t.hz

let measure_block sim ~block ~n =
  let w = Bitvec.create n in
  for i = 0 to n - 1 do
    if Sim.measure sim (block + i) then Bitvec.set w i true
  done;
  w

(* Prepare the code state of [circuit] on [block] and verify it by
   XOR-comparison against a second fresh copy at [checker]: the
   measured word must lie in the circuit's code (membership·word = 0),
   otherwise both copies are discarded. *)
let verified_code_state sim t ~circuit ~membership ~block ~checker
    ~max_attempts =
  let n = t.code.Code.n in
  let rec attempt k =
    if k > max_attempts then
      failwith "Css_ec: ancilla verification kept failing";
    for q = 0 to n - 1 do
      Sim.prepare_zero sim (block + q)
    done;
    Sim.run_circuit sim circuit ~offset:block;
    for q = 0 to n - 1 do
      Sim.prepare_zero sim (checker + q)
    done;
    Sim.run_circuit sim circuit ~offset:checker;
    for i = 0 to n - 1 do
      Sim.cnot sim (block + i) (checker + i)
    done;
    let w = measure_block sim ~block:checker ~n in
    if not (Bitvec.is_zero (Mat.mul_vec membership w)) then attempt (k + 1)
  in
  attempt 1

let apply_support sim ~data ~gate support =
  Bitvec.iteri (fun q set -> if set then gate sim (data + q)) support

let prepare_zero_verified sim t ~block ~checker ~max_attempts =
  verified_code_state sim t ~circuit:t.circuit_x ~membership:t.kx ~block
    ~checker ~max_attempts

let classical_correct_bit_word t w =
  match t.decode_z (Mat.mul_vec t.hz w) with
  | Some support -> Some (Bitvec.xor w support)
  | None -> None

(* one bit-flip syndrome measurement: fresh verified ancilla, XOR
   data→ancilla, Z readout, H_Z syndrome *)
let bit_syndrome sim t ~data ~ancilla ~checker ~max_attempts =
  let n = t.code.Code.n in
  verified_code_state sim t ~circuit:t.circuit_z ~membership:t.kz
    ~block:ancilla ~checker ~max_attempts;
  (* rotate |rowspace H_Z⟩ into |ker H_Z⟩ *)
  for q = 0 to n - 1 do
    Sim.h sim (ancilla + q)
  done;
  for i = 0 to n - 1 do
    Sim.cnot sim (data + i) (ancilla + i)
  done;
  Mat.mul_vec t.hz (measure_block sim ~block:ancilla ~n)

let phase_syndrome sim t ~data ~ancilla ~checker ~max_attempts =
  let n = t.code.Code.n in
  verified_code_state sim t ~circuit:t.circuit_x ~membership:t.kx
    ~block:ancilla ~checker ~max_attempts;
  for i = 0 to n - 1 do
    Sim.cnot sim (ancilla + i) (data + i)
  done;
  let w = Bitvec.create n in
  for i = 0 to n - 1 do
    if Sim.measure_x sim (ancilla + i) then Bitvec.set w i true
  done;
  Mat.mul_vec t.hx w

let run_side ~policy ~measure ~decode ~apply =
  let empty_like s = Bitvec.create (Bitvec.length s) in
  let act s =
    match decode s with
    | Some support when Bitvec.weight support > 0 ->
      apply support;
      support
    | Some support -> support
    | None -> empty_like s
  in
  match policy with
  | Accept_first ->
    let s = measure () in
    (act s, 1)
  | Repeat_if_nontrivial ->
    let s1 = measure () in
    if Bitvec.is_zero s1 then (Bitvec.create (Bitvec.length s1), 1)
    else begin
      let s2 = measure () in
      if Bitvec.equal s1 s2 then (act s2, 2)
      else (Bitvec.create (Bitvec.length s1), 2)
    end

let bit_round sim t ~policy ~data ~ancilla ~checker ~max_attempts =
  let support, _ =
    run_side ~policy
      ~measure:(fun () -> bit_syndrome sim t ~data ~ancilla ~checker ~max_attempts)
      ~decode:t.decode_z
      ~apply:(apply_support sim ~data ~gate:Sim.x)
  in
  support

let phase_round sim t ~policy ~data ~ancilla ~checker ~max_attempts =
  let support, _ =
    run_side ~policy
      ~measure:(fun () ->
        phase_syndrome sim t ~data ~ancilla ~checker ~max_attempts)
      ~decode:t.decode_x
      ~apply:(apply_support sim ~data ~gate:Sim.z)
  in
  support

let recover sim t ~policy ~data ~ancilla ~checker ~max_attempts =
  let _, r1 =
    run_side ~policy
      ~measure:(fun () -> bit_syndrome sim t ~data ~ancilla ~checker ~max_attempts)
      ~decode:t.decode_z
      ~apply:(apply_support sim ~data ~gate:Sim.x)
  in
  let _, r2 =
    run_side ~policy
      ~measure:(fun () ->
        phase_syndrome sim t ~data ~ancilla ~checker ~max_attempts)
      ~decode:t.decode_x
      ~apply:(apply_support sim ~data ~gate:Sim.z)
  in
  r1 + r2
