(** Generalized Steane-method error correction for an arbitrary CSS
    code (§3.6, Fig. 10).

    For a CSS code with checks (H_X | H_Z) on n qubits, one full
    syndrome needs only two n-qubit ancilla blocks and 2n XORs — "each
    qubit in the code block is acted on by only two quantum gates …
    the minimum necessary to detect both bit-flip and phase errors".

    Bit-flip round: the ancilla is the uniform superposition over
    ker H_Z (prepared as H^⊗n of the |rowspace H_Z⟩ code state, so
    that the dangerous correlated Z errors on the ancilla appear as X
    errors during verification); transversal XOR data→ancilla; Z-basis
    readout; H_Z·word is the data's X-error syndrome, and the word
    itself is a uniformly random codeword carrying no logical
    information.  Phase-flip round: dual — ancilla |rowspace H_X⟩ as
    XOR source, X-basis readout, H_X·word the Z-error syndrome.

    Ancilla verification compares against a second copy (XOR +
    destructive measurement) and rejects on any code-membership
    violation of the measured word. *)

type t

(** [make ?max_weight ~code ~hx ~hz ()] — precompute ancilla bases,
    preparation circuits and classical side decoders.  [max_weight]
    bounds the classical decoding tables (default 1: single-error
    correction, right for distance-3 codes). *)
val make :
  ?max_weight:int ->
  code:Codes.Stabilizer_code.t ->
  hx:Gf2.Mat.t ->
  hz:Gf2.Mat.t ->
  unit ->
  t

(** Prebuilt gadgets. *)
val for_steane : unit -> t

val for_shor9 : unit -> t
val for_reed_muller : unit -> t

(** The [[23,1,7]] Golay gadget (classical decoding up to 3 errors per
    side). *)
val for_golay : unit -> t

val code : t -> Codes.Stabilizer_code.t

(** [self_dual t] — H_X = H_Z (bitwise Hadamard is then a logical
    Hadamard on every block). *)
val self_dual : t -> bool

(** [prepare_zero_verified sim t ~block ~checker ~max_attempts] — a
    verified encoded |0̄⟩ (the |rowspace H_X⟩ code state) on the
    n qubits at [block]. *)
val prepare_zero_verified :
  Sim.t -> t -> block:int -> checker:int -> max_attempts:int -> unit

(** [classical_correct_bit_word t w] — classically correct a measured
    Z-basis word: the H_Z syndrome of [w] is decoded and the error
    support XORed away ([None] if the syndrome exceeds the decoder's
    weight budget). *)
val classical_correct_bit_word : t -> Gf2.Bitvec.t -> Gf2.Bitvec.t option

(** Scratch requirement: two blocks of n qubits (ancilla at [ancilla],
    verification copy at [checker]). *)
val scratch_qubits : t -> int

type policy = Accept_first | Repeat_if_nontrivial

(** [recover sim t ~policy ~data ~ancilla ~checker ~max_attempts] —
    one full EC cycle (bit round then phase round, each governed by
    the §3.4 policy).  Returns syndrome rounds used. *)
val recover :
  Sim.t ->
  t ->
  policy:policy ->
  data:int ->
  ancilla:int ->
  checker:int ->
  max_attempts:int ->
  int

(** Individual rounds, for tests and custom schedules: each prepares
    its own verified ancilla and returns the raw correction support it
    applied (empty when the syndrome was trivial or the policy
    declined). *)
val bit_round :
  Sim.t ->
  t ->
  policy:policy ->
  data:int ->
  ancilla:int ->
  checker:int ->
  max_attempts:int ->
  Gf2.Bitvec.t

val phase_round :
  Sim.t ->
  t ->
  policy:policy ->
  data:int ->
  ancilla:int ->
  checker:int ->
  max_attempts:int ->
  Gf2.Bitvec.t
