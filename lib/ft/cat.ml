let build sim qubits =
  match qubits with
  | [] -> invalid_arg "Cat.build: no qubits"
  | head :: rest ->
    Sim.prepare_zero sim head;
    List.iter (Sim.prepare_zero sim) rest;
    Sim.h sim head;
    let rec chain prev = function
      | [] -> ()
      | q :: tl ->
        Sim.cnot sim prev q;
        chain q tl
    in
    chain head rest

let prepare_unverified sim ~qubits = build sim qubits

let prepare sim ~qubits ~check ~max_attempts =
  let head = List.hd qubits in
  let last = List.nth qubits (List.length qubits - 1) in
  let rec attempt k =
    if k > max_attempts then
      failwith "Cat.prepare: verification kept failing"
    else begin
      build sim qubits;
      if head = last then k (* single-qubit "cat": nothing to verify *)
      else begin
        Sim.prepare_zero sim check;
        Sim.cnot sim head check;
        Sim.cnot sim last check;
        if Sim.measure sim check then attempt (k + 1) else k
      end
    end
  in
  attempt 1
