(* Deprecated compatibility shim over the shared Monte-Carlo engine:
   every entry point delegates straight to Mc.Runner (which owns the
   defaulting and validation).  New code should call Mc.Runner
   directly. *)

let default_domains = Mc.Runner.default_domains

let failures ?domains ?chunk ~trials ~seed trial =
  Mc.Runner.failures ?domains ?chunk ~trials ~seed trial

let estimate ?domains ~trials ~seed trial =
  let f = Mc.Runner.failures ?domains ~trials ~seed trial in
  (f, trials, float_of_int f /. float_of_int trials)
