(* Thin compatibility shim over the shared Monte-Carlo engine
   (Mc.Runner).  Historically this module did its own per-worker
   seeding, which made results depend on the domain count; the engine
   chunks trials and splits RNG streams per chunk, so counts are now
   bit-identical for any [domains]. *)

let default_domains () = Mc.Runner.default_domains ()

let failures ?domains ~trials ~seed trial =
  if trials < 0 then invalid_arg "Parmc.failures";
  (match domains with
  | Some d when d < 1 -> invalid_arg "Parmc.failures: domains >= 1"
  | _ -> ());
  Mc.Runner.failures ?domains ~trials ~seed trial

let estimate ?domains ~trials ~seed trial =
  let f = failures ?domains ~trials ~seed trial in
  (f, trials, float_of_int f /. float_of_int trials)
