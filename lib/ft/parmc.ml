let default_domains () = min 8 (Domain.recommended_domain_count ())

let chunk_bounds ~trials ~domains =
  (* trial index ranges [lo, hi) per worker, remainder spread across
     the first workers *)
  let base = trials / domains and extra = trials mod domains in
  List.init domains (fun w ->
      let lo = (w * base) + min w extra in
      let hi = lo + base + if w < extra then 1 else 0 in
      (lo, hi))

let run_chunk ~seed trial (lo, hi) =
  (* one RNG per worker, seeded by the worker's first trial index so
     the stream does not depend on how other workers progress *)
  let rng = Random.State.make [| seed; lo; 0x9e3779b9 |] in
  let failures = ref 0 in
  for i = lo to hi - 1 do
    if trial rng i then incr failures
  done;
  !failures

let failures ?domains ~trials ~seed trial =
  if trials < 0 then invalid_arg "Parmc.failures";
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Parmc.failures: domains >= 1"
    | None -> default_domains ()
  in
  let domains = max 1 (min domains trials) in
  if domains = 1 then run_chunk ~seed trial (0, trials)
  else begin
    let chunks = chunk_bounds ~trials ~domains in
    let workers =
      List.map
        (fun bounds -> Domain.spawn (fun () -> run_chunk ~seed trial bounds))
        chunks
    in
    List.fold_left (fun acc d -> acc + Domain.join d) 0 workers
  end

let estimate ?domains ~trials ~seed trial =
  let f = failures ?domains ~trials ~seed trial in
  (f, trials, float_of_int f /. float_of_int trials)
