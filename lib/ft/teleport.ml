let logical_bell_pair sim ~block_a ~block_b ~checker ~verify =
  Steane_ec.prepare_zero_verified sim ~block:block_a ~checker ~verify
    ~max_attempts:50;
  Steane_ec.prepare_zero_verified sim ~block:block_b ~checker ~verify
    ~max_attempts:50;
  Transversal.logical_h sim ~block:block_a;
  Transversal.logical_cnot sim ~control:block_a ~target:block_b

let teleport sim ~source ~bell_a ~bell_b ~checker ~verify =
  logical_bell_pair sim ~block_a:bell_a ~block_b:bell_b ~checker ~verify;
  (* logical Bell measurement of (source, bell_a) *)
  Transversal.logical_cnot sim ~control:source ~target:bell_a;
  Transversal.logical_h sim ~block:source;
  let m1 = Transversal.logical_measure_z_destructive sim ~block:source in
  let m2 = Transversal.logical_measure_z_destructive sim ~block:bell_a in
  if m2 then Transversal.logical_x_w3 sim ~block:bell_b;
  if m1 then Transversal.logical_z sim ~block:bell_b;
  (m1, m2)
