let one_run ~theta ~steps ~signs sv =
  Statevec.h sv 0;
  for k = 0 to steps - 1 do
    let angle = if signs k then theta else -.theta in
    Statevec.apply_1q sv (Qmath.Gates.rz angle) 0
  done;
  (* probability of reading |−⟩ in the X basis *)
  Statevec.h sv 0;
  Statevec.prob_one sv 0

let error_probability ~theta ~steps ~mode ~trials rng =
  match mode with
  | `Systematic ->
    let sv = Statevec.create 1 in
    one_run ~theta ~steps ~signs:(fun _ -> true) sv
  | `Random ->
    let acc = ref 0.0 in
    for _ = 1 to trials do
      let sv = Statevec.create 1 in
      acc := !acc +. one_run ~theta ~steps ~signs:(fun _ -> Random.State.bool rng) sv
    done;
    !acc /. float_of_int trials

let crossover_table ~theta ~steps_list ~trials rng =
  List.map
    (fun steps ->
      let p_rand = error_probability ~theta ~steps ~mode:`Random ~trials rng in
      let p_sys =
        error_probability ~theta ~steps ~mode:`Systematic ~trials rng
      in
      let per_step = (theta /. 2.0) ** 2.0 in
      let linear = float_of_int steps *. per_step in
      let quadratic = (float_of_int steps *. theta /. 2.0) ** 2.0 in
      (steps, p_rand, p_sys, linear, quadratic))
    steps_list
