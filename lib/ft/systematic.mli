(** Random vs systematic phase errors (§6, first bullet; E9).

    A qubit in |+⟩ suffers N small over-rotations e^{iθZ/2}.  When the
    rotation signs are random the error *probability* grows linearly
    in N (a random walk of amplitudes); when they conspire with the
    same sign the error *amplitude* grows linearly, so the probability
    grows like N².  Hence the systematic-error accuracy requirement is
    quadratically more stringent: a threshold ε₀ against random errors
    becomes ~ε₀² against maximally conspiratorial ones. *)

(** [error_probability ~theta ~steps ~mode ~trials rng] — probability
    that an X-basis measurement of the rotated |+⟩ yields |−⟩.
    [mode] is [`Systematic] (all rotations +θ) or [`Random] (each ±θ
    with equal probability; averaged over [trials] sign sequences;
    [trials] is ignored for [`Systematic]). *)
val error_probability :
  theta:float ->
  steps:int ->
  mode:[ `Systematic | `Random ] ->
  trials:int ->
  Random.State.t ->
  float

(** [crossover_table ~theta ~steps_list ~trials rng] — (N, p_random,
    p_systematic, N·(θ/2)², (N·θ/2)²) rows: the measured values track
    the two analytic scalings until saturation. *)
val crossover_table :
  theta:float ->
  steps_list:int list ->
  trials:int ->
  Random.State.t ->
  (int * float * float * float * float) list
