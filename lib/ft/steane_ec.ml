module Bitvec = Gf2.Bitvec
module Hamming = Codes.Hamming

type verify_policy = Reject | Paper_flip | No_verification
type policy = Accept_first | Repeat_if_nontrivial

let scratch_qubits = 14

let encode_zero sim ~block =
  for q = 0 to 6 do
    Sim.prepare_zero sim (block + q)
  done;
  Sim.run_circuit sim (Codes.Steane.encoding_circuit ()) ~offset:block

(* Destructively compare: XOR the block under test into a fresh
   encoded |0̄⟩ at [checker] and measure the checker.  Returns the raw
   7-bit word. *)
let comparison_word sim ~block ~checker =
  encode_zero sim ~block:checker;
  for i = 0 to 6 do
    Sim.cnot sim (block + i) (checker + i)
  done;
  let w = Bitvec.create 7 in
  for i = 0 to 6 do
    if Sim.measure sim (checker + i) then Bitvec.set w i true
  done;
  w

let logical_value_of_word w =
  let corrected, _ = Hamming.decode w in
  Bitvec.weight corrected mod 2 = 1

let prepare_zero_verified sim ~block ~checker ~verify ~max_attempts =
  match verify with
  | No_verification -> encode_zero sim ~block
  | Reject ->
    let rec attempt k =
      if k > max_attempts then
        failwith "Steane_ec.prepare_zero_verified: verification kept failing";
      encode_zero sim ~block;
      let w = comparison_word sim ~block ~checker in
      (* any anomaly — nonzero Hamming syndrome or odd parity — means
         some bit flip somewhere in test or checker block: discard *)
      if Bitvec.is_zero (Hamming.syndrome w) && Bitvec.weight w mod 2 = 0
      then ()
      else attempt (k + 1)
    in
    attempt 1
  | Paper_flip ->
    encode_zero sim ~block;
    let v1 = logical_value_of_word (comparison_word sim ~block ~checker) in
    let v2 = logical_value_of_word (comparison_word sim ~block ~checker) in
    if v1 && v2 then begin
      (* confirmed |1̄⟩: flip with the weight-3 logical NOT
         (footnote f) *)
      let lx = Codes.Steane.logical_x_weight3 in
      for q = 0 to 6 do
        if Pauli.letter lx q <> Pauli.I then Sim.x sim (block + q)
      done
    end

let prepare_plus_verified sim ~block ~checker ~verify ~max_attempts =
  prepare_zero_verified sim ~block ~checker ~verify ~max_attempts;
  for q = 0 to 6 do
    Sim.h sim (block + q)
  done

let max_attempts_default = 25

let syndrome_extraction_circuit () =
  let open Circuit in
  let c = ref (create ~num_cbits:14 ~num_qubits:14 ()) in
  let add g = c := add_gate !c g in
  let add_i i = c := Circuit.add !c i in
  let encoder_on_ancilla () =
    List.iter
      (fun instr ->
        match instr with
        | Gate g -> add (Circuit.map_gate_qubits (fun q -> q + 7) g)
        | _ -> ())
      (instrs (Codes.Steane.encoding_circuit ()))
  in
  (* bit round: ancilla |+bar> = encoded |0bar> then bitwise H *)
  for q = 7 to 13 do
    add_i (Reset q)
  done;
  encoder_on_ancilla ();
  for q = 7 to 13 do
    add (H q)
  done;
  for i = 0 to 6 do
    add (Cnot (i, 7 + i))
  done;
  for i = 0 to 6 do
    add_i (Measure { qubit = 7 + i; cbit = i })
  done;
  (* phase round: fresh ancilla |0bar> as XOR source, X readout *)
  for q = 7 to 13 do
    add_i (Reset q)
  done;
  encoder_on_ancilla ();
  for i = 0 to 6 do
    add (Cnot (7 + i, i))
  done;
  for i = 0 to 6 do
    add_i (Measure_x { qubit = 7 + i; cbit = 7 + i })
  done;
  !c

(* Storage accounting per §6's maximal-parallelism assumption: ancilla
   blocks are prepared and verified *offline, in parallel* with the
   data's previous activity (the paper: "the qubits are rarely idle; a
   gate acts on each one in almost every step"), so the data block
   idles only while the ancilla is read out — one storage step per
   syndrome round. *)
let idle_data_one_step sim ~data =
  Sim.tick sim (List.init 7 (fun i -> data + i))

let bit_syndrome_once sim ~data ~ancilla ~checker ~verify =
  prepare_plus_verified sim ~block:ancilla ~checker ~verify
    ~max_attempts:max_attempts_default;
  for i = 0 to 6 do
    Sim.cnot sim (data + i) (ancilla + i)
  done;
  idle_data_one_step sim ~data;
  let w = Bitvec.create 7 in
  for i = 0 to 6 do
    if Sim.measure sim (ancilla + i) then Bitvec.set w i true
  done;
  Hamming.syndrome w

let phase_syndrome_once sim ~data ~ancilla ~checker ~verify =
  prepare_zero_verified sim ~block:ancilla ~checker ~verify
    ~max_attempts:max_attempts_default;
  for i = 0 to 6 do
    Sim.cnot sim (ancilla + i) (data + i)
  done;
  idle_data_one_step sim ~data;
  let w = Bitvec.create 7 in
  for i = 0 to 6 do
    if Sim.measure_x sim (ancilla + i) then Bitvec.set w i true
  done;
  Hamming.syndrome w

(* A 3-bit Hamming syndrome points at a qubit: the columns of Eq. (1)
   read the 1-based position in binary, row 0 most significant. *)
let position_of_syndrome s =
  let v =
    (if Bitvec.get s 0 then 4 else 0)
    + (if Bitvec.get s 1 then 2 else 0)
    + if Bitvec.get s 2 then 1 else 0
  in
  if v = 0 then None else Some (v - 1)

let correct_side ~policy ~data ~measure_syndrome ~apply_at =
  let s1 = measure_syndrome () in
  match policy with
  | Accept_first ->
    (match position_of_syndrome s1 with
    | Some q -> apply_at (data + q)
    | None -> ());
    1
  | Repeat_if_nontrivial ->
    if Bitvec.is_zero s1 then 1
    else begin
      let s2 = measure_syndrome () in
      (if Bitvec.equal s1 s2 then
         match position_of_syndrome s2 with
         | Some q -> apply_at (data + q)
         | None -> ());
      2
    end

let recover sim ~policy ~verify ~data ~ancilla ~checker =
  let bit_rounds =
    correct_side ~policy ~data
      ~measure_syndrome:(fun () ->
        bit_syndrome_once sim ~data ~ancilla ~checker ~verify)
      ~apply_at:(fun q -> Sim.x sim q)
  in
  let phase_rounds =
    correct_side ~policy ~data
      ~measure_syndrome:(fun () ->
        phase_syndrome_once sim ~data ~ancilla ~checker ~verify)
      ~apply_at:(fun q -> Sim.z sim q)
  in
  bit_rounds + phase_rounds
