(** A fault-tolerant logical processor: [k] Steane blocks plus shared
    ancilla/checker scratch, exposing §4.1's gate set at the logical
    level with an error-correction cycle after every logical gate
    (the paper's "perform error correction every time we execute a
    gate", §5).

    This is the library's top-level user API: build a machine, apply
    logical gates, read logical qubits out.  Everything underneath —
    verified ancilla preparation, Steane syndrome extraction, the
    §3.4 repetition rule — is the fault-tolerant machinery of §3. *)

type t

(** [create ?policy ?verify ~blocks ~noise rng] — allocate
    [7·blocks + 15] physical qubits ([blocks] data blocks, one ancilla
    block, one checker block, one measurement ancilla); every block
    starts as verified encoded |0̄⟩. *)
val create :
  ?policy:Steane_ec.policy ->
  ?verify:Steane_ec.verify_policy ->
  blocks:int ->
  noise:Noise.t ->
  Random.State.t ->
  t

val num_blocks : t -> int
val sim : t -> Sim.t

(** [ec t i] — run one error-correction cycle on block [i]. *)
val ec : t -> int -> unit

(** Logical gates (each transversal gate is followed by an EC cycle on
    the touched blocks). *)
val x : t -> int -> unit

val z : t -> int -> unit
val h : t -> int -> unit
val s : t -> int -> unit
val cnot : t -> control:int -> target:int -> unit

(** [measure_z t i] — destructive logical measurement of block [i]
    (Hamming-corrected parity readout).  The block is left collapsed;
    re-prepare before reuse. *)
val measure_z : t -> int -> bool

(** [measure_z_nondestructive t i] — Fig. 4's ancilla-parity
    measurement, majority-voted over 3 repetitions. *)
val measure_z_nondestructive : t -> int -> bool

(** [prepare_zero t i] — re-initialize block [i] to verified |0̄⟩. *)
val prepare_zero : t -> int -> unit

(** Noise-free readouts for judging experiments. *)
val ideal_z : t -> int -> bool

val ideal_x : t -> int -> bool
