module Code = Codes.Stabilizer_code
module Bitvec = Gf2.Bitvec

type policy = Accept_first | Repeat_if_nontrivial | Until_agree of int

let max_cat_attempts = 25

let measure_generator sim ~generator ~offset ~cat_base ~check ~verified =
  let support =
    List.filter_map
      (fun q ->
        match Pauli.letter generator q with
        | Pauli.I -> None
        | l -> Some (q + offset, l))
      (List.init (Pauli.num_qubits generator) Fun.id)
  in
  let w = List.length support in
  if w = 0 then false
  else begin
    let cat_qubits =
      if verified then List.init w (fun i -> cat_base + i)
      else [ cat_base ]
    in
    if verified then
      ignore (Cat.prepare sim ~qubits:cat_qubits ~check ~max_attempts:max_cat_attempts)
    else Sim.prepare_plus sim cat_base;
    (* controlled-letter gates: distinct cat qubit per data qubit when
       verified; the same shared ancilla otherwise (Fig. 2's sin) *)
    List.iteri
      (fun i (q, l) ->
        let control = if verified then cat_base + i else cat_base in
        match l with
        | Pauli.X -> Sim.cnot sim control q
        | Pauli.Z -> Sim.cz sim control q
        | Pauli.Y -> Sim.cy sim control q
        | Pauli.I -> assert false)
      support;
    (* X-basis parity readout of the ancilla *)
    List.fold_left
      (fun acc cq -> acc <> Sim.measure_x sim cq)
      false cat_qubits
  end

let syndrome sim (code : Code.t) ~offset ~cat_base ~check ~verified =
  let s = Bitvec.create (Array.length code.Code.generators) in
  Array.iteri
    (fun i g ->
      if measure_generator sim ~generator:g ~offset ~cat_base ~check ~verified
      then Bitvec.set s i true;
      (* one storage time step on the data block per generator *)
      Sim.tick sim (List.init code.Code.n (fun q -> q + offset)))
    code.Code.generators;
  s

let apply_correction sim (code : Code.t) ~offset s =
  let d = Code.default_decoder code in
  match Code.decode d s with
  | Some c when Pauli.weight c > 0 ->
    (* the correction itself is noisy: one-qubit gates on the data *)
    List.iter
      (fun q ->
        match Pauli.letter c q with
        | Pauli.I -> ()
        | Pauli.X -> Sim.x sim (q + offset)
        | Pauli.Y -> Sim.y sim (q + offset)
        | Pauli.Z -> Sim.z sim (q + offset))
      (List.init code.Code.n Fun.id)
  | Some _ | None -> ()

let recover sim code ~policy ~offset ~cat_base ~check ~verified =
  let measure () = syndrome sim code ~offset ~cat_base ~check ~verified in
  match policy with
  | Accept_first ->
    let s = measure () in
    apply_correction sim code ~offset s;
    1
  | Repeat_if_nontrivial ->
    let s1 = measure () in
    if Bitvec.is_zero s1 then 1
    else begin
      let s2 = measure () in
      if Bitvec.equal s1 s2 then apply_correction sim code ~offset s2;
      2
    end
  | Until_agree max_rounds ->
    let s1 = measure () in
    if Bitvec.is_zero s1 then 1
    else begin
      let rec loop prev rounds =
        if rounds >= max_rounds then rounds
        else begin
          let s = measure () in
          if Bitvec.equal s prev then begin
            apply_correction sim code ~offset s;
            rounds + 1
          end
          else loop s (rounds + 1)
        end
      in
      loop s1 1
    end
