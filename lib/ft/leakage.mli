(** Leakage errors and the detection circuit of Fig. 15 (§6).

    A qubit may "leak" out of its two-dimensional space; the model
    here follows the paper's operational assumption: gates act
    trivially on a leaked qubit.  The detection circuit — ancilla
    |0⟩, XOR from the data, NOT on the data, XOR again, NOT back —
    leaves the ancilla in |1⟩ for any qubit state and in |0⟩ when the
    data has leaked, because the two XORs then both act trivially.
    A detected leak is repaired by replacing the qubit with a fresh
    |0⟩, converting the leak into a *located* erasure that ordinary
    syndrome measurement then corrects. *)

type t

(** [create ~n ~noise ~leak_rate rng] — a stabilizer register where
    every gate additionally leaks each operand with probability
    [leak_rate]. *)
val create :
  n:int -> noise:Noise.t -> leak_rate:float -> Random.State.t -> t

val sim : t -> Sim.t

(** [leaked t q] — whether qubit [q] is currently leaked. *)
val leaked : t -> int -> bool

(** [leak t q] — force a leak (for tests). *)
val leak : t -> int -> unit

(** Gates with leakage semantics: a leaked operand makes the gate act
    trivially (on all operands, per the Fig. 15 assumption). *)
val h : t -> int -> unit

val x : t -> int -> unit
val z : t -> int -> unit
val cnot : t -> int -> int -> unit

(** [measure t q] — a leaked qubit reads 0. *)
val measure : t -> int -> bool

(** [detect t ~data ~ancilla] — the Fig. 15 circuit; [true] when a
    leak was detected on [data].  Uses real (noisy) gates. *)
val detect : t -> data:int -> ancilla:int -> bool

(** [replace t q] — swap in a fresh |0⟩ for a leaked qubit. *)
val replace : t -> int -> unit

(** [scrub t ~qubits ~ancilla] — detect-and-replace over a block;
    returns how many leaks were repaired. *)
val scrub : t -> qubits:int list -> ancilla:int -> int
