module Sv = Statevec

(* controlled-controlled-Z via Toffoli conjugated by H on one target *)
let ccz sv x a b =
  Sv.h sv b;
  Sv.toffoli sv x a b;
  Sv.h sv b

(* One Z_AB = (−1)^{ab+c} measurement (Fig. 12): control in |+⟩,
   controlled-(−1)^{ab} (CCZ) and controlled-(−1)^{c} (CZ), then an
   X-basis readout of the control. *)
let measure_zab sv rng ~a ~b ~c ~control =
  Sv.reset sv rng control;
  Sv.h sv control;
  ccz sv control a b;
  Sv.cz sv control c;
  Sv.h sv control;
  Sv.measure sv rng control

let prepare_ancilla_a sv rng ~a ~b ~c ~control =
  Sv.h sv a;
  Sv.h sv b;
  Sv.h sv c;
  (* repeat the measurement until two consecutive outcomes agree *)
  let rec settle prev rounds =
    if rounds > 25 then failwith "Toffoli.prepare_ancilla_a: no agreement";
    let m = measure_zab sv rng ~a ~b ~c ~control in
    if m = prev then (m, rounds) else settle m (rounds + 1)
  in
  let first = measure_zab sv rng ~a ~b ~c ~control in
  let outcome, rounds = settle first 2 in
  (* outcome=true means the |B⟩ = NOT₃|A⟩ branch: fix with X on c *)
  if outcome then Sv.x sv c;
  rounds

let teleport sv rng ~ancilla:(a, b, c) ~data:(x, y, z) =
  Sv.cnot sv a x;
  Sv.cnot sv b y;
  Sv.cnot sv z c;
  Sv.h sv z;
  let mx = Sv.measure sv rng x in
  let my = Sv.measure sv rng y in
  let mw = Sv.measure sv rng z in
  (* Fig. 13 fixups, derived from Eq. (27); the phase repairs use the
     pre-flip register values, so they come first. *)
  if mw then begin
    Sv.z sv c;
    Sv.cz sv a b
  end;
  if my then Sv.cnot sv a c;
  if mx then Sv.cnot sv b c;
  if mx && my then Sv.x sv c;
  if mx then Sv.x sv a;
  if my then Sv.x sv b;
  (mx, my, mw)

let apply sv rng ~data:(x, y, z) ~scratch:(a, b, c) ~control =
  Sv.reset sv rng a;
  Sv.reset sv rng b;
  Sv.reset sv rng c;
  ignore (prepare_ancilla_a sv rng ~a ~b ~c ~control);
  ignore (teleport sv rng ~ancilla:(a, b, c) ~data:(x, y, z));
  Sv.swap sv a x;
  Sv.swap sv b y;
  Sv.swap sv c z

(* --- transversal ingredient checks -------------------------------- *)

let encode_block sv ~block ~one =
  (* play the Fig. 3 encoder on |0⟩ or |1⟩ input, mapped into the
     block *)
  if one then Sv.x sv (block + Codes.Steane.input_qubit);
  let c =
    Circuit.map_qubits ~num_qubits:(Sv.num_qubits sv)
      ~f:(fun q -> q + block)
      (Codes.Steane.encoding_circuit ())
  in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Gate g -> Sv.apply_gate sv g
      | _ -> ())
    (Circuit.instrs c)

let logical_measure sv rng ~block =
  let w = Gf2.Bitvec.create 7 in
  for i = 0 to 6 do
    if Sv.measure sv rng (block + i) then Gf2.Bitvec.set w i true
  done;
  let corrected, _ = Codes.Hamming.decode w in
  Gf2.Bitvec.weight corrected mod 2 = 1

let transversal_ingredients_check rng =
  let ok = ref true in
  (* bitwise CNOT = logical XOR, bitwise CZ = logical CZ: check on all
     four computational basis pairs and on a superposed control *)
  List.iter
    (fun (xin, yin) ->
      let sv = Sv.create 14 in
      encode_block sv ~block:0 ~one:xin;
      encode_block sv ~block:7 ~one:yin;
      for i = 0 to 6 do
        Sv.cnot sv i (7 + i)
      done;
      let mx = logical_measure sv rng ~block:0 in
      let my = logical_measure sv rng ~block:7 in
      if mx <> xin || my <> (xin <> yin) then ok := false)
    [ (false, false); (false, true); (true, false); (true, true) ];
  (* bitwise CZ acts as logical CZ: check the phase on |1̄1̄⟩ via an
     interference experiment — apply H̄ to block 0 of |+̄⟩|1̄⟩, CZ̄,
     H̄ again; logical CZ flips the block-0 X̄ eigenvalue iff block 1
     is |1̄⟩. *)
  List.iter
    (fun yin ->
      let sv = Sv.create 14 in
      encode_block sv ~block:0 ~one:false;
      for i = 0 to 6 do
        Sv.h sv i
      done;
      (* block0 now |+̄⟩ *)
      encode_block sv ~block:7 ~one:yin;
      for i = 0 to 6 do
        Sv.cz sv i (7 + i)
      done;
      for i = 0 to 6 do
        Sv.h sv i
      done;
      (* if yin: CZ̄ turned |+̄⟩ into |−̄⟩, so H̄ gives |1̄⟩ *)
      let m = logical_measure sv rng ~block:0 in
      if m <> yin then ok := false)
    [ false; true ];
  (* destructive logical measurement survives one bit flip or one
     readout error: flip a physical qubit first *)
  let sv = Sv.create 14 in
  encode_block sv ~block:0 ~one:true;
  Sv.x sv 3;
  if not (logical_measure sv rng ~block:0) then ok := false;
  !ok
