(** Fault-tolerant teleportation of a logical qubit between Steane
    blocks — the measurement-plus-Pauli machinery of §4.2 (Gottesman's
    observation that FT measurement and the easy gates carry most of
    the weight of universality), built entirely from verified ancilla
    preparation, transversal gates and robust destructive logical
    measurement.

    The logical Bell pair is two verified |0̄⟩ blocks through H̄ and
    transversal XOR; the Bell measurement is transversal XOR + H̄ +
    two Hamming-corrected destructive readouts; the outcome-dependent
    X̄/Z̄ repairs are transversal.  Every step is fault tolerant, so a
    single fault anywhere leaves at most one error per block. *)

(** [logical_bell_pair sim ~block_a ~block_b ~checker ~verify] —
    entangle two blocks into (|0̄0̄⟩ + |1̄1̄⟩)/√2. *)
val logical_bell_pair :
  Sim.t ->
  block_a:int ->
  block_b:int ->
  checker:int ->
  verify:Steane_ec.verify_policy ->
  unit

(** [teleport sim ~source ~bell_a ~bell_b ~checker ~verify] — consume
    the logical state on [source]: afterwards it lives on [bell_b]
    ([source] and [bell_a] are left destructively measured).  Returns
    the two Bell-measurement outcome bits. *)
val teleport :
  Sim.t ->
  source:int ->
  bell_a:int ->
  bell_b:int ->
  checker:int ->
  verify:Steane_ec.verify_policy ->
  bool * bool
