(** A fault-tolerant logical processor over *any* self-dual CSS code —
    the generalization of {!Logical} (which is Steane-specialized) to
    e.g. the [[23,1,7]] Golay code.  §4.2's point in executable form:
    the same transversal repertoire (NOT, H, P, XOR) plus the
    generalized Steane-method EC of Fig. 10 runs unchanged on any code
    in the family; stronger codes buy lower logical error rates with
    the same program.

    Requirements, checked at {!create} time on a noise-free tableau:
    H_X = H_Z (bitwise H is the logical H) and, if the [s] gate is to
    be used, bitwise P⁻¹ must implement P̄ (true when the odd
    codewords all have weight ≡ 3 mod 4 — Steane and Golay both
    qualify). *)

type t

(** [create ?policy ~gadget ~blocks ~noise rng] — [blocks] data blocks
    of the gadget's code, plus shared EC scratch; every block starts
    as verified |0̄⟩.  Raises [Invalid_argument] if the gadget is not
    self-dual. *)
val create :
  ?policy:Css_ec.policy ->
  gadget:Css_ec.t ->
  blocks:int ->
  noise:Noise.t ->
  Random.State.t ->
  t

val num_blocks : t -> int
val code : t -> Codes.Stabilizer_code.t
val sim : t -> Sim.t

(** [ec t i] — one EC cycle on block [i]. *)
val ec : t -> int -> unit

(** Logical gates, each followed by EC on the touched blocks. *)
val x : t -> int -> unit

val z : t -> int -> unit
val h : t -> int -> unit

(** [s t i] — bitwise P⁻¹; raises if the creation-time check found the
    code does not support it. *)
val s : t -> int -> unit

val cnot : t -> control:int -> target:int -> unit

(** [measure_z t i] — destructive logical readout with classical
    correction (robust to up to t errors of the code). *)
val measure_z : t -> int -> bool

(** [prepare_zero t i] — re-initialize block [i]. *)
val prepare_zero : t -> int -> unit

(** Noise-free judgments. *)
val ideal_z : t -> int -> bool

val ideal_x : t -> int -> bool
