(** Transversal logical gates on Steane blocks (§4.1).

    For the 7-qubit code, NOT, the Hadamard rotation R, the phase gate
    P and XOR are all implemented bitwise (Eq. 11, Fig. 11); P̄
    requires bitwise P⁻¹ because the odd codewords have weight
    ≡ 3 (mod 4).  Each physical qubit participates in at most one
    gate, so a single fault produces at most one error per block. *)

(** [logical_x sim ~block] — transversal NOT (X on all 7 qubits). *)
val logical_x : Sim.t -> block:int -> unit

(** [logical_x_w3 sim ~block] — NOT with just 3 X's (footnote f). *)
val logical_x_w3 : Sim.t -> block:int -> unit

(** [logical_z sim ~block] — transversal phase flip. *)
val logical_z : Sim.t -> block:int -> unit

(** [logical_h sim ~block] — bitwise Hadamard implements H̄
    (Eq. 11). *)
val logical_h : Sim.t -> block:int -> unit

(** [logical_s sim ~block] — bitwise P⁻¹ implements the logical phase
    gate P̄ (§4.1). *)
val logical_s : Sim.t -> block:int -> unit

(** [logical_cnot sim ~control ~target] — transversal XOR between two
    blocks (Fig. 11). *)
val logical_cnot : Sim.t -> control:int -> target:int -> unit

(** [logical_measure_z_destructive sim ~block] — measure all 7 qubits,
    classically Hamming-correct, return the parity (§2, Fig. 4 left):
    robust to one bit-flip or measurement error. *)
val logical_measure_z_destructive : Sim.t -> block:int -> bool

(** [logical_measure_z_nondestructive sim ~block ~ancilla ~repetitions]
    — Fig. 4 right: copy the parity of Z̄'s weight-3 support onto an
    ancilla with three XORs and measure it, preserving the code
    subspace.  A single bit-flip (in block or ancilla) can fool one
    round, so the measurement is repeated and majority-voted (§3.5).
    [repetitions] should be odd. *)
val logical_measure_z_nondestructive :
  Sim.t -> block:int -> ancilla:int -> repetitions:int -> bool

(** [logical_measure_x_nondestructive] — the Hadamard-dual: an
    ancilla in |+⟩ controls XORs into X̄'s support and is read in the
    X basis. *)
val logical_measure_x_nondestructive :
  Sim.t -> block:int -> ancilla:int -> repetitions:int -> bool
