(** The §6 stochastic error model: random, uncorrelated Pauli errors.

    - after every one-qubit gate, the qubit suffers X, Y or Z each
      with probability [gate1]/3;
    - after every two-qubit gate, the *pair* suffers one of the 15
      nontrivial two-qubit Paulis with probability [gate2]/15 each —
      the paper's pessimistic assumption that a faulty XOR damages
      both its source and its target;
    - a fresh |0⟩ or |+⟩ preparation is orthogonal with probability
      [prep];
    - a measurement outcome is reported flipped with probability
      [meas];
    - per time step ([tick]), every idle qubit suffers X, Y or Z each
      with probability [store]/3. *)

type t = {
  gate1 : float;
  gate2 : float;
  prep : float;
  meas : float;
  store : float;
}

(** No noise at all. *)
val none : t

(** [uniform e] sets every parameter to [e] (the single-ε model used
    for the threshold estimates of Eqs. 34–35). *)
val uniform : float -> t

(** [gates_only e] sets gate, preparation and measurement errors to
    [e] and storage to 0 (the regime of Eq. 34). *)
val gates_only : float -> t

(** [storage_only e] sets storage to [e], everything else 0 (Eq. 35's
    regime). *)
val storage_only : float -> t

val pp : Format.formatter -> t -> unit
