(** Shor-style fault-tolerant error correction (§3.2–§3.4, Fig. 7).

    Each stabilizer generator is measured through a *verified* cat
    state whose width equals the generator's weight: controlled-X /
    controlled-Z gates from distinct cat qubits onto the generator's
    support, then an X-basis parity readout of the cat.  Each ancilla
    qubit touches the data exactly once, so one ancilla fault cannot
    deposit two errors in the block.  For Steane's code this is the
    24-ancilla-bit, 24-XOR procedure of §3.2.

    The syndrome-acceptance policies of §3.4 are explicit:
    - [Accept_first]: act on the first syndrome (not fault tolerant —
      a single fault can produce a wrong nontrivial syndrome whose
      "correction" injects a second error);
    - [Repeat_if_nontrivial]: the paper's rule — a trivial syndrome is
      accepted silently; a nontrivial one is measured again and acted
      on only if confirmed;
    - [Until_agree n]: keep measuring (≤ n times) until two
      consecutive syndromes agree, then act. *)

type policy = Accept_first | Repeat_if_nontrivial | Until_agree of int

(** [measure_generator sim ~generator ~offset ~cat_base ~check
     ~verified] measures one (embedded) generator — X, Z or Y letters,
    so non-CSS codes like the 5-qubit code work too — and returns the
    syndrome bit.  [cat_base] points at [weight generator] scratch
    qubits; [check] is the cat-verification ancilla.  [verified=false]
    gives the Fig. 2 baseline: every controlled gate shares a single
    unverified ancilla qubit, so ancilla phase errors feed back into
    the data. *)
val measure_generator :
  Sim.t ->
  generator:Pauli.t ->
  offset:int ->
  cat_base:int ->
  check:int ->
  verified:bool ->
  bool

(** [syndrome sim code ~offset ~cat_base ~check ~verified] measures
    every generator once. *)
val syndrome :
  Sim.t ->
  Codes.Stabilizer_code.t ->
  offset:int ->
  cat_base:int ->
  check:int ->
  verified:bool ->
  Gf2.Bitvec.t

(** [recover sim code ~policy ~offset ~cat_base ~check ~verified]
    runs one full error-correction cycle: syndrome measurement(s)
    under [policy], then the code's default-decoder correction.
    Returns the number of syndrome measurement rounds used. *)
val recover :
  Sim.t ->
  Codes.Stabilizer_code.t ->
  policy:policy ->
  offset:int ->
  cat_base:int ->
  check:int ->
  verified:bool ->
  int
