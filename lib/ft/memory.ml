module Code = Codes.Stabilizer_code

(* One estimate record for the whole library: the sequential entry
   points return the same Mc.Stats.estimate (with Wilson interval) as
   the _mc ones. *)
type estimate = Mc.Stats.estimate = {
  failures : int;
  trials : int;
  rate : float;
  stderr : float;
  ci_low : float;
  ci_high : float;
}

let estimate ~failures ~trials = Mc.Stats.estimate ~failures ~trials ()

let letters = [| Pauli.X; Pauli.Y; Pauli.Z |]

let depolarize_block tab rng ~n ~offset ~block_size ~eps =
  for q = 0 to block_size - 1 do
    if Random.State.float rng 1.0 < eps then
      Tableau.apply_pauli tab
        (Pauli.single n (offset + q) letters.(Random.State.int rng 3))
  done

(* Each experiment is one per-trial predicate [... -> rng -> t -> bool]
   (t's parity picks the basis), shared between the legacy sequential
   entry points (caller-supplied rng) and the [_mc] entry points that
   fan the trials out over domains via Mc.Runner. *)

let unencoded_trial ~eps rng t =
  let plus_basis = t mod 2 = 0 in
  let tab = Tableau.create 1 in
  if plus_basis then Tableau.h tab 0;
  depolarize_block tab rng ~n:1 ~offset:0 ~block_size:1 ~eps;
  if plus_basis then Tableau.measure_x tab rng 0 else Tableau.measure tab rng 0

let sequential ~trials rng trial =
  let failures = ref 0 in
  for t = 1 to trials do
    if trial rng t then incr failures
  done;
  estimate ~failures:!failures ~trials

let unencoded ~eps ~trials rng = sequential ~trials rng (unencoded_trial ~eps)

let unencoded_mc ?domains ?obs ~eps ~trials ~seed () =
  Mc.Runner.estimate ?domains ?obs ~trials ~seed
    (Mc.Runner.scalar (unencoded_trial ~eps))

(* Judge a block noiselessly: ideal recovery then logical readout. *)
let judge tab rng (code : Code.t) ~plus_basis =
  ignore (Code.ideal_recover code tab rng);
  let op =
    if plus_basis then code.Code.logical_x.(0) else code.Code.logical_z.(0)
  in
  Tableau.measure_pauli tab rng op

let encoded_ideal_ec_trial (code : Code.t) ~eps ~rounds rng t =
  let plus_basis = t mod 2 = 0 in
  let tab =
    if plus_basis then Code.prepare_logical_plus code
    else Code.prepare_logical_zero code
  in
  for _ = 1 to rounds do
    depolarize_block tab rng ~n:code.Code.n ~offset:0 ~block_size:code.Code.n
      ~eps;
    ignore (Code.ideal_recover code tab rng)
  done;
  judge tab rng code ~plus_basis

let encoded_ideal_ec (code : Code.t) ~eps ~rounds ~trials rng =
  sequential ~trials rng (encoded_ideal_ec_trial code ~eps ~rounds)

let encoded_ideal_ec_mc ?domains ?obs code ~eps ~rounds ~trials ~seed () =
  Mc.Runner.estimate ?domains ?obs ~trials ~seed
    (Mc.Runner.scalar (encoded_ideal_ec_trial code ~eps ~rounds))

(* Copy a prepared 7-qubit logical state into a larger noisy register:
   we instead prepare directly in the register by projecting. *)
let prepare_steane_in sim ~offset ~plus_basis =
  let code = Codes.Steane.code in
  let n = Sim.num_qubits sim in
  let tab = Sim.tableau sim in
  Array.iter
    (fun g ->
      let g' = Code.embed code ~offset ~total:n g in
      if not (Tableau.postselect_pauli tab g' ~outcome:false) then
        failwith "prepare_steane_in: projection failed")
    code.Code.generators;
  let logical =
    if plus_basis then code.Code.logical_x.(0) else code.Code.logical_z.(0)
  in
  let l' = Code.embed code ~offset ~total:n logical in
  if not (Tableau.postselect_pauli tab l' ~outcome:false) then
    failwith "prepare_steane_in: logical projection failed"

let judge_steane_in sim ~offset ~plus_basis =
  if plus_basis then
    Sim.ideal_measure_logical_x sim Codes.Steane.code ~offset
  else Sim.ideal_measure_logical_z sim Codes.Steane.code ~offset

let shor_ec_trial ~noise ~policy ~verified rng t =
  let code = Codes.Steane.code in
  (* data 0..6, cat 7..10 (weight-4 generators), check 11 *)
  let plus_basis = t mod 2 = 0 in
  let sim = Sim.create ~n:12 ~noise rng in
  prepare_steane_in sim ~offset:0 ~plus_basis;
  ignore
    (Shor_ec.recover sim code ~policy ~offset:0 ~cat_base:7 ~check:11
       ~verified);
  judge_steane_in sim ~offset:0 ~plus_basis

let shor_ec_failure ~noise ~policy ~verified ~trials rng =
  sequential ~trials rng (shor_ec_trial ~noise ~policy ~verified)

let shor_ec_failure_mc ?domains ?obs ~noise ~policy ~verified ~trials ~seed () =
  Mc.Runner.estimate ?domains ?obs ~trials ~seed
    (Mc.Runner.scalar (shor_ec_trial ~noise ~policy ~verified))

let steane_ec_trial ~noise ~policy ~verify rng t =
  (* data 0..6, ancilla 7..13, checker 14..20 *)
  let plus_basis = t mod 2 = 0 in
  let sim = Sim.create ~n:21 ~noise rng in
  prepare_steane_in sim ~offset:0 ~plus_basis;
  ignore (Steane_ec.recover sim ~policy ~verify ~data:0 ~ancilla:7 ~checker:14);
  judge_steane_in sim ~offset:0 ~plus_basis

let steane_ec_failure ~noise ~policy ~verify ~trials rng =
  sequential ~trials rng (steane_ec_trial ~noise ~policy ~verify)

let steane_ec_failure_mc ?domains ?obs ~noise ~policy ~verify ~trials ~seed () =
  Mc.Runner.estimate ?domains ?obs ~trials ~seed
    (Mc.Runner.scalar (steane_ec_trial ~noise ~policy ~verify))

let logical_cnot_exrec_trial ~noise rng t =
  (* blocks at 0 and 7; shared scratch at 14 (ancilla) and 21
     (checker) *)
  let plus_basis = t mod 2 = 0 in
  let sim = Sim.create ~n:28 ~noise rng in
  prepare_steane_in sim ~offset:0 ~plus_basis;
  prepare_steane_in sim ~offset:7 ~plus_basis;
  Transversal.logical_cnot sim ~control:0 ~target:7;
  ignore
    (Steane_ec.recover sim ~policy:Steane_ec.Repeat_if_nontrivial
       ~verify:Steane_ec.Reject ~data:0 ~ancilla:14 ~checker:21);
  ignore
    (Steane_ec.recover sim ~policy:Steane_ec.Repeat_if_nontrivial
       ~verify:Steane_ec.Reject ~data:7 ~ancilla:14 ~checker:21);
  (* judge both blocks: logical CNOT on |00̄⟩ / |+̄+̄⟩ leaves
     eigenstates of Z̄⊗Z̄-ish checks; simplest exact judgment:
     undo the logical CNOT ideally, then check each block *)
  let tab = Sim.tableau sim in
  for i = 0 to 6 do
    Tableau.cnot tab i (7 + i)
  done;
  let fail0 = judge_steane_in sim ~offset:0 ~plus_basis in
  let fail1 = judge_steane_in sim ~offset:7 ~plus_basis in
  fail0 || fail1

let logical_cnot_exrec_failure ~noise ~trials rng =
  sequential ~trials rng (logical_cnot_exrec_trial ~noise)

let logical_cnot_exrec_failure_mc ?domains ?obs ~noise ~trials ~seed () =
  Mc.Runner.estimate ?domains ?obs ~trials ~seed
    (Mc.Runner.scalar (logical_cnot_exrec_trial ~noise))

let fit_quadratic points =
  match points with
  | [] -> invalid_arg "fit_quadratic: no points"
  | _ ->
    let ratios = List.map (fun (eps, p) -> p /. (eps *. eps)) points in
    List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
