(* Little-endian coefficient array, normalized: the zero polynomial is
   [||], otherwise the top slot is [true].  Every constructor returns a
   fresh array, so values behave immutably. *)
type t = bool array

let normalize a =
  let d = ref (Array.length a - 1) in
  while !d >= 0 && not a.(!d) do
    decr d
  done;
  Array.sub a 0 (!d + 1)

let zero = [||]
let one = [| true |]
let x = [| false; true |]
let is_zero p = Array.length p = 0
let degree p = Array.length p - 1
let coeff p i = i >= 0 && i < Array.length p && p.(i)
let equal (a : t) (b : t) = a = b

let of_exponents es =
  match es with
  | [] -> zero
  | _ ->
    let d =
      List.fold_left
        (fun acc e ->
          if e < 0 then invalid_arg "Poly.of_exponents: negative exponent";
          max acc e)
        0 es
    in
    let a = Array.make (d + 1) false in
    List.iter (fun e -> a.(e) <- not a.(e)) es;
    normalize a

let to_exponents p =
  let es = ref [] in
  for i = Array.length p - 1 downto 0 do
    if p.(i) then es := i :: !es
  done;
  !es

let add a b =
  let la = Array.length a and lb = Array.length b in
  normalize
    (Array.init (max la lb) (fun i -> (i < la && a.(i)) <> (i < lb && b.(i))))

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let r = Array.make (degree a + degree b + 1) false in
    Array.iteri
      (fun i ai ->
        if ai then
          Array.iteri (fun j bj -> if bj then r.(i + j) <- not r.(i + j)) b)
      a;
    (* the leading coefficient is 1·1: already normalized *)
    r
  end

let divmod a b =
  if is_zero b then invalid_arg "Poly.divmod: division by zero";
  let db = degree b and da = degree a in
  if da < db then (zero, Array.copy a)
  else begin
    let r = Array.copy a in
    let q = Array.make (da - db + 1) false in
    for i = da downto db do
      if r.(i) then begin
        q.(i - db) <- true;
        for j = 0 to db do
          if b.(j) then r.(i - db + j) <- not r.(i - db + j)
        done
      end
    done;
    (normalize q, normalize r)
  end

let rem a b = snd (divmod a b)
let divides b a = is_zero (rem a b)

let xn_plus_one n =
  if n < 1 then invalid_arg "Poly.xn_plus_one: n >= 1";
  let a = Array.make (n + 1) false in
  a.(0) <- true;
  a.(n) <- true;
  a

let to_string p =
  if is_zero p then "0"
  else
    String.concat " + "
      (List.rev_map
         (function 0 -> "1" | 1 -> "x" | e -> Printf.sprintf "x^%d" e)
         (to_exponents p))

let pp fmt p = Format.pp_print_string fmt (to_string p)
