(** Dense matrices over GF(2), stored as an array of bit-packed rows.

    Rows are {!Bitvec.t} values of equal length; the matrix owns its
    rows (mutating a row returned by {!row} mutates the matrix). *)

type t

(** [create ~rows ~cols] is the zero matrix. *)
val create : rows:int -> cols:int -> t

(** [identity n] is the n-by-n identity. *)
val identity : int -> t

(** [rows m] / [cols m] are the dimensions. *)
val rows : t -> int

val cols : t -> int

(** [get m i j] / [set m i j b] access entry (i, j). *)
val get : t -> int -> int -> bool

val set : t -> int -> int -> bool -> unit

(** [row m i] is row [i] (shared, not copied). *)
val row : t -> int -> Bitvec.t

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [of_int_lists xss] builds a matrix from rows of 0/1 integers; all
    rows must have the same length and there must be at least one. *)
val of_int_lists : int list list -> t

(** [to_int_lists m] is the inverse of {!of_int_lists}. *)
val to_int_lists : t -> int list list

(** [of_rows vs] builds a matrix whose rows are copies of [vs]. *)
val of_rows : Bitvec.t list -> t

(** [transpose m] is the transpose as a fresh matrix. *)
val transpose : t -> t

(** [mul a b] is the matrix product over GF(2). *)
val mul : t -> t -> t

(** [mul_vec m v] is [m · v] (length of [v] = [cols m]). *)
val mul_vec : t -> Bitvec.t -> Bitvec.t

(** [vec_mul v m] is [vᵀ · m] (length of [v] = [rows m]). *)
val vec_mul : Bitvec.t -> t -> Bitvec.t

(** [add a b] is the entrywise sum (XOR). *)
val add : t -> t -> t

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

(** [rank m] is the GF(2) rank. *)
val rank : t -> int

(** [rref m] is the reduced row-echelon form together with the list of
    pivot column indices (in row order). *)
val rref : t -> t * int list

(** [kernel m] is a basis of the right null space \{x : m·x = 0\},
    one basis vector per list element. *)
val kernel : t -> Bitvec.t list

(** [row_space m] is a basis of the row space (the nonzero rows of the
    RREF). *)
val row_space : t -> Bitvec.t list

(** [solve m b] is [Some x] with [m·x = b] if the system is
    consistent, [None] otherwise. *)
val solve : t -> Bitvec.t -> Bitvec.t option

(** [inverse m] is the inverse of a square invertible matrix, or
    [None] if singular. *)
val inverse : t -> t option

(** [augment a b] is the block matrix [[a | b]] ([a] and [b] must have
    equal row counts). *)
val augment : t -> t -> t

(** [stack a b] stacks [a] on top of [b] (equal column counts). *)
val stack : t -> t -> t

(** [in_row_space m v] tests membership of [v] in the row space. *)
val in_row_space : t -> Bitvec.t -> bool

(** [pp] renders one row of 0/1 characters per line. *)
val pp : Format.formatter -> t -> unit
