(** Bit-packed vectors over GF(2).

    A [Bitvec.t] is a fixed-length vector of bits stored 64 per word.
    All indices are 0-based.  Operations raise [Invalid_argument] on
    out-of-range indices or length mismatches. *)

type t

(** [create n] is the all-zero vector of length [n]. *)
val create : int -> t

(** [length v] is the number of bits in [v]. *)
val length : t -> int

(** [get v i] is bit [i] of [v]. *)
val get : t -> int -> bool

(** [set v i b] sets bit [i] of [v] to [b], in place. *)
val set : t -> int -> bool -> unit

(** [flip v i] toggles bit [i] of [v], in place. *)
val flip : t -> int -> unit

(** [copy v] is a fresh vector equal to [v]. *)
val copy : t -> t

(** [xor_into ~src dst] replaces [dst] with [dst XOR src], in place.
    The two vectors must have the same length. *)
val xor_into : src:t -> t -> unit

(** [blit ~src dst] copies [src] over [dst], in place (same length). *)
val blit : src:t -> t -> unit

(** [clear v] zeroes every bit, in place. *)
val clear : t -> unit

(** [xor a b] is the elementwise XOR of [a] and [b] as a fresh vector. *)
val xor : t -> t -> t

(** [and_ a b] is the elementwise AND of [a] and [b] as a fresh vector. *)
val and_ : t -> t -> t

(** [dot a b] is the GF(2) inner product (parity of the AND). *)
val dot : t -> t -> bool

(** [weight v] is the Hamming weight (number of set bits). *)
val weight : t -> int

(** [parity v] is [true] iff [v] has odd weight. *)
val parity : t -> bool

(** [is_zero v] is [true] iff no bit of [v] is set. *)
val is_zero : t -> bool

(** [equal a b] is structural bit equality (lengths must match, else
    the result is [false]). *)
val equal : t -> t -> bool

(** [compare a b] is a total order compatible with [equal]. *)
val compare : t -> t -> int

(** [of_bool_list bs] packs a list of bits. *)
val of_bool_list : bool list -> t

(** [to_bool_list v] unpacks to a list of bits. *)
val to_bool_list : t -> bool list

(** [of_int_list xs] packs a list of 0/1 integers.  Raises
    [Invalid_argument] on values other than 0 or 1. *)
val of_int_list : int list -> t

(** [to_int_list v] unpacks to a list of 0/1 integers. *)
val to_int_list : t -> int list

(** [of_string s] parses a string of ['0']/['1'] characters. *)
val of_string : string -> t

(** [to_string v] renders as a string of ['0']/['1'] characters,
    lowest index first. *)
val to_string : t -> string

(** [of_int ~width x] is the little-endian binary expansion of [x]
    padded/truncated to [width] bits (bit [i] is [(x lsr i) land 1]).
    [width] must be at most 62. *)
val of_int : width:int -> int -> t

(** [to_int v] reassembles the little-endian integer; the length of
    [v] must be at most 62. *)
val to_int : t -> int

(** [iteri f v] applies [f i b] to every bit. *)
val iteri : (int -> bool -> unit) -> t -> unit

(** [support v] lists the indices of set bits in increasing order. *)
val support : t -> int list

(** [append a b] is the concatenation of [a] and [b]. *)
val append : t -> t -> t

(** [sub v ~pos ~len] extracts [len] bits starting at [pos]. *)
val sub : t -> pos:int -> len:int -> t

(** [randomize ~p rng v] sets each bit of [v] independently to 1 with
    probability [p], using [rng], in place. *)
val randomize : p:float -> Random.State.t -> t -> unit

(** [num_words v] — number of 64-bit words backing [v] (storage is
    padded to a whole number of words; padding bits are always 0). *)
val num_words : t -> int

(** [get_word v j] — the j-th 64-bit word, little-endian bit order
    (bit [64·j + k] of the vector is bit [k] of the word). *)
val get_word : t -> int -> int64

(** [set_word v j w] — overwrite the j-th 64-bit word (inverse of
    {!get_word}).  Bits of [w] beyond the vector length are masked
    off, preserving the all-zero-padding invariant. *)
val set_word : t -> int -> int64 -> unit

(** [pp] formats a vector as its 0/1 string. *)
val pp : Format.formatter -> t -> unit
