type t = { nrows : int; ncols : int; data : Bitvec.t array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create";
  { nrows = rows; ncols = cols; data = Array.init rows (fun _ -> Bitvec.create cols) }

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    Bitvec.set m.data.(i) i true
  done;
  m

let rows m = m.nrows
let cols m = m.ncols

let get m i j = Bitvec.get m.data.(i) j
let set m i j b = Bitvec.set m.data.(i) j b
let row m i = m.data.(i)

let copy m =
  { m with data = Array.map Bitvec.copy m.data }

let of_int_lists xss =
  match xss with
  | [] -> invalid_arg "Mat.of_int_lists: empty"
  | first :: _ ->
    let ncols = List.length first in
    let data =
      List.map
        (fun xs ->
          if List.length xs <> ncols then
            invalid_arg "Mat.of_int_lists: ragged rows";
          Bitvec.of_int_list xs)
        xss
    in
    { nrows = List.length xss; ncols; data = Array.of_list data }

let to_int_lists m = Array.to_list (Array.map Bitvec.to_int_list m.data)

let of_rows vs =
  match vs with
  | [] -> invalid_arg "Mat.of_rows: empty"
  | first :: _ ->
    let ncols = Bitvec.length first in
    List.iter
      (fun v ->
        if Bitvec.length v <> ncols then invalid_arg "Mat.of_rows: ragged")
      vs;
    { nrows = List.length vs; ncols; data = Array.of_list (List.map Bitvec.copy vs) }

let transpose m =
  let r = create ~rows:m.ncols ~cols:m.nrows in
  for i = 0 to m.nrows - 1 do
    Bitvec.iteri (fun j b -> if b then set r j i true) m.data.(i)
  done;
  r

let mul_vec m v =
  if Bitvec.length v <> m.ncols then invalid_arg "Mat.mul_vec";
  let r = Bitvec.create m.nrows in
  for i = 0 to m.nrows - 1 do
    if Bitvec.dot m.data.(i) v then Bitvec.set r i true
  done;
  r

let vec_mul v m =
  if Bitvec.length v <> m.nrows then invalid_arg "Mat.vec_mul";
  let r = Bitvec.create m.ncols in
  Bitvec.iteri (fun i b -> if b then Bitvec.xor_into ~src:m.data.(i) r) v;
  r

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Mat.mul: dimension mismatch";
  let r = create ~rows:a.nrows ~cols:b.ncols in
  for i = 0 to a.nrows - 1 do
    Bitvec.iteri
      (fun k bit -> if bit then Bitvec.xor_into ~src:b.data.(k) r.data.(i))
      a.data.(i)
  done;
  r

let add a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then invalid_arg "Mat.add";
  { a with data = Array.map2 Bitvec.xor a.data b.data }

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Array.for_all2 Bitvec.equal a.data b.data

(* In-place Gaussian elimination to reduced row-echelon form; returns
   pivot columns in row order.  The workhorse for rank/kernel/solve. *)
let rref_in_place m =
  let pivots = ref [] in
  let r = ref 0 in
  for c = 0 to m.ncols - 1 do
    if !r < m.nrows then begin
      (* find a pivot row at or below !r with a 1 in column c *)
      let piv = ref (-1) in
      (try
         for i = !r to m.nrows - 1 do
           if Bitvec.get m.data.(i) c then begin
             piv := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !piv >= 0 then begin
        let tmp = m.data.(!r) in
        m.data.(!r) <- m.data.(!piv);
        m.data.(!piv) <- tmp;
        for i = 0 to m.nrows - 1 do
          if i <> !r && Bitvec.get m.data.(i) c then
            Bitvec.xor_into ~src:m.data.(!r) m.data.(i)
        done;
        pivots := c :: !pivots;
        incr r
      end
    end
  done;
  List.rev !pivots

let rref m =
  let m' = copy m in
  let pivots = rref_in_place m' in
  (m', pivots)

let rank m =
  let m' = copy m in
  List.length (rref_in_place m')

let kernel m =
  let m', pivots = rref m in
  let piv_arr = Array.of_list pivots in
  let is_pivot = Array.make m.ncols false in
  List.iter (fun c -> is_pivot.(c) <- true) pivots;
  let free_cols =
    List.filter (fun c -> not is_pivot.(c)) (List.init m.ncols Fun.id)
  in
  List.map
    (fun fc ->
      let v = Bitvec.create m.ncols in
      Bitvec.set v fc true;
      Array.iteri
        (fun i pc -> if Bitvec.get m'.data.(i) fc then Bitvec.set v pc true)
        piv_arr;
      v)
    free_cols

let row_space m =
  let m', pivots = rref m in
  List.mapi (fun i _ -> Bitvec.copy m'.data.(i)) pivots

let augment a b =
  if a.nrows <> b.nrows then invalid_arg "Mat.augment";
  { nrows = a.nrows;
    ncols = a.ncols + b.ncols;
    data = Array.map2 Bitvec.append a.data b.data }

let stack a b =
  if a.ncols <> b.ncols then invalid_arg "Mat.stack";
  { nrows = a.nrows + b.nrows;
    ncols = a.ncols;
    data = Array.append (Array.map Bitvec.copy a.data) (Array.map Bitvec.copy b.data) }

let solve m b =
  if Bitvec.length b <> m.nrows then invalid_arg "Mat.solve";
  let bm =
    { nrows = m.nrows;
      ncols = 1;
      data = Array.init m.nrows (fun i ->
        let v = Bitvec.create 1 in
        if Bitvec.get b i then Bitvec.set v 0 true;
        v) }
  in
  let aug = augment m bm in
  let aug', pivots = rref aug in
  (* inconsistent iff some pivot lands in the appended column *)
  if List.exists (fun c -> c = m.ncols) pivots then None
  else begin
    let x = Bitvec.create m.ncols in
    List.iteri
      (fun i c -> if Bitvec.get aug'.data.(i) m.ncols then Bitvec.set x c true)
      pivots;
    Some x
  end

let inverse m =
  if m.nrows <> m.ncols then invalid_arg "Mat.inverse: not square";
  let aug = augment m (identity m.nrows) in
  let aug', pivots = rref aug in
  if List.length pivots <> m.nrows
     || List.exists (fun c -> c >= m.ncols) pivots
  then None
  else
    Some
      { nrows = m.nrows;
        ncols = m.ncols;
        data =
          Array.init m.nrows (fun i ->
            Bitvec.sub aug'.data.(i) ~pos:m.ncols ~len:m.ncols) }

let in_row_space m v =
  if Bitvec.length v <> m.ncols then invalid_arg "Mat.in_row_space";
  let stacked = stack m { nrows = 1; ncols = m.ncols; data = [| Bitvec.copy v |] } in
  rank stacked = rank m

let pp fmt m =
  for i = 0 to m.nrows - 1 do
    if i > 0 then Format.pp_print_newline fmt ();
    Bitvec.pp fmt m.data.(i)
  done
