type t = { len : int; words : Bytes.t }
(* Bits are packed 8 per byte, little-endian within each byte.  Bytes
   rather than int arrays keeps copying cheap and avoids boxing; the
   hot XOR path works 8 bytes at a time through unsafe 64-bit reads. *)

(* storage is padded to whole 64-bit words so that word-parallel
   consumers (the tableau's phase accumulation) can read aligned
   int64s without a tail case; padding bits stay 0 because every
   mutator works within [0, len). *)
let bytes_for len = (len + 63) / 64 * 8

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Bytes.make (bytes_for len) '\000' }

let length v = v.len

let check_index v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let get v i =
  check_index v i;
  let b = Char.code (Bytes.unsafe_get v.words (i lsr 3)) in
  b land (1 lsl (i land 7)) <> 0

let set v i bit =
  check_index v i;
  let j = i lsr 3 in
  let b = Char.code (Bytes.unsafe_get v.words j) in
  let mask = 1 lsl (i land 7) in
  let b' = if bit then b lor mask else b land lnot mask in
  Bytes.unsafe_set v.words j (Char.unsafe_chr b')

let flip v i =
  check_index v i;
  let j = i lsr 3 in
  let b = Char.code (Bytes.unsafe_get v.words j) in
  Bytes.unsafe_set v.words j (Char.unsafe_chr (b lxor (1 lsl (i land 7))))

let copy v = { len = v.len; words = Bytes.copy v.words }

let check_same_length a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let xor_into ~src dst =
  check_same_length src dst;
  let n = Bytes.length dst.words in
  let full = n - (n mod 8) in
  let i = ref 0 in
  while !i < full do
    let a = Bytes.get_int64_ne dst.words !i
    and b = Bytes.get_int64_ne src.words !i in
    Bytes.set_int64_ne dst.words !i (Int64.logxor a b);
    i := !i + 8
  done;
  for j = full to n - 1 do
    let a = Char.code (Bytes.unsafe_get dst.words j)
    and b = Char.code (Bytes.unsafe_get src.words j) in
    Bytes.unsafe_set dst.words j (Char.unsafe_chr (a lxor b))
  done

let blit ~src dst =
  check_same_length src dst;
  Bytes.blit src.words 0 dst.words 0 (Bytes.length src.words)

let clear v = Bytes.fill v.words 0 (Bytes.length v.words) '\000'

let xor a b =
  let r = copy a in
  xor_into ~src:b r;
  r

let and_ a b =
  check_same_length a b;
  let r = copy a in
  for j = 0 to Bytes.length r.words - 1 do
    let x = Char.code (Bytes.unsafe_get r.words j)
    and y = Char.code (Bytes.unsafe_get b.words j) in
    Bytes.unsafe_set r.words j (Char.unsafe_chr (x land y))
  done;
  r

let popcount_byte =
  (* 256-entry popcount table; tiny and avoids per-bit loops. *)
  let t = Array.make 256 0 in
  for i = 1 to 255 do
    t.(i) <- t.(i lsr 1) + (i land 1)
  done;
  t

let weight v =
  let n = Bytes.length v.words in
  let acc = ref 0 in
  for j = 0 to n - 1 do
    acc := !acc + popcount_byte.(Char.code (Bytes.unsafe_get v.words j))
  done;
  !acc

let parity v = weight v land 1 = 1

let dot a b =
  check_same_length a b;
  let acc = ref 0 in
  for j = 0 to Bytes.length a.words - 1 do
    let x = Char.code (Bytes.unsafe_get a.words j)
    and y = Char.code (Bytes.unsafe_get b.words j) in
    acc := !acc + popcount_byte.(x land y)
  done;
  !acc land 1 = 1

let is_zero v =
  let n = Bytes.length v.words in
  let rec loop j = j >= n || (Bytes.unsafe_get v.words j = '\000' && loop (j + 1)) in
  loop 0

let equal a b = a.len = b.len && Bytes.equal a.words b.words

let compare a b =
  let c = Int.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.words b.words

let of_bool_list bs =
  let v = create (List.length bs) in
  List.iteri (fun i b -> if b then set v i true) bs;
  v

let to_bool_list v = List.init v.len (get v)

let of_int_list xs =
  let f = function
    | 0 -> false
    | 1 -> true
    | _ -> invalid_arg "Bitvec.of_int_list: bits must be 0 or 1"
  in
  of_bool_list (List.map f xs)

let to_int_list v = List.init v.len (fun i -> if get v i then 1 else 0)

let of_string s =
  let v = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set v i true
      | _ -> invalid_arg "Bitvec.of_string: expected only '0'/'1'")
    s;
  v

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')

let of_int ~width x =
  if width < 0 || width > 62 then invalid_arg "Bitvec.of_int: width";
  let v = create width in
  for i = 0 to width - 1 do
    if (x lsr i) land 1 = 1 then set v i true
  done;
  v

let to_int v =
  if v.len > 62 then invalid_arg "Bitvec.to_int: too long";
  let acc = ref 0 in
  for i = v.len - 1 downto 0 do
    acc := (!acc lsl 1) lor (if get v i then 1 else 0)
  done;
  !acc

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (get v i)
  done

let support v =
  let acc = ref [] in
  for i = v.len - 1 downto 0 do
    if get v i then acc := i :: !acc
  done;
  !acc

let append a b =
  let r = create (a.len + b.len) in
  iteri (fun i bit -> if bit then set r i true) a;
  iteri (fun i bit -> if bit then set r (a.len + i) true) b;
  r

let sub v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.len then invalid_arg "Bitvec.sub";
  let r = create len in
  for i = 0 to len - 1 do
    if get v (pos + i) then set r i true
  done;
  r

let randomize ~p rng v =
  for i = 0 to v.len - 1 do
    set v i (Random.State.float rng 1.0 < p)
  done

let num_words v = Bytes.length v.words / 8
let get_word v j = Bytes.get_int64_ne v.words (8 * j)

let set_word v j w =
  if j < 0 || j >= num_words v then
    invalid_arg "Bitvec.set_word: word index out of range";
  (* mask the tail word so the padding-bits-stay-zero invariant holds
     whatever the caller hands us *)
  let live = v.len - (64 * j) in
  let w =
    if live >= 64 then w
    else Int64.logand w (Int64.sub (Int64.shift_left 1L live) 1L)
  in
  Bytes.set_int64_ne v.words (8 * j) w

let pp fmt v = Format.pp_print_string fmt (to_string v)
