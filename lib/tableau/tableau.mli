(** Stabilizer-state simulator (Aaronson–Gottesman tableau with
    destabilizers).

    Simulates Clifford circuits — H, the Paulis, the phase gate P,
    XOR/CZ/SWAP — plus Z/X-basis measurements and Pauli fault
    injection, in O(n²) per gate worst case and thousands of qubits.
    Exactly the machinery needed for the paper's error-correction
    protocols: every circuit in §2–§5 except the Toffoli is Clifford,
    and the §6 error model is stochastic Pauli noise, which stabilizer
    simulation treats exactly. *)

type t

(** [create n] is the stabilizer state |0…0⟩ on [n] qubits. *)
val create : int -> t

val num_qubits : t -> int

(** [copy s]. *)
val copy : t -> t

(** In-place Clifford gates. *)
val h : t -> int -> unit

val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val s_gate : t -> int -> unit
val sdg : t -> int -> unit
val cnot : t -> int -> int -> unit
val cz : t -> int -> int -> unit

(** [cy t control target] — controlled-Y, as S_target · CNOT · S†_target. *)
val cy : t -> int -> int -> unit

val swap : t -> int -> int -> unit

(** [apply_gate s g] dispatches a circuit gate.
    Raises [Invalid_argument] on [Toffoli] (not Clifford). *)
val apply_gate : t -> Circuit.gate -> unit

(** [apply_pauli s p] applies a Pauli operator as a fault: every
    stabilizer/destabilizer row anticommuting with [p] has its sign
    flipped.  The global phase of [p] is irrelevant. *)
val apply_pauli : t -> Pauli.t -> unit

(** [measure_rng s rng q] measures qubit [q] in the Z basis
    (collapsing when the outcome is random), returning the outcome
    bit.  [Mc.Rng.t] is the library's single randomness interface;
    build one with [Mc.Rng.of_key] or wrap a legacy state with
    [Mc.Rng.of_random_state]. *)
val measure_rng : t -> Mc.Rng.t -> int -> bool

(** [measure s rng q] — compatibility wrapper over {!measure_rng}
    (bit-identical draws: the state is wrapped, not reseeded). *)
val measure : t -> Random.State.t -> int -> bool

(** [measure_x_rng s rng q] measures in the X basis. *)
val measure_x_rng : t -> Mc.Rng.t -> int -> bool

val measure_x : t -> Random.State.t -> int -> bool

(** [measure_is_random s q] is [true] when a Z measurement of [q]
    would be nondeterministic. *)
val measure_is_random : t -> int -> bool

(** [reset_rng s rng q] measures and corrects qubit [q] to |0⟩. *)
val reset_rng : t -> Mc.Rng.t -> int -> unit

val reset : t -> Random.State.t -> int -> unit

(** [measure_pauli_rng s rng p] projectively measures the Hermitian
    Pauli observable [p] (phase must be ±1), returning the outcome bit
    ([false] = +1 eigenvalue).  Collapses the state when the outcome
    is random.  This is the idealized syndrome measurement used for
    noise-free decoding checks. *)
val measure_pauli_rng : t -> Mc.Rng.t -> Pauli.t -> bool

val measure_pauli : t -> Random.State.t -> Pauli.t -> bool

(** [postselect_pauli s p ~outcome] projects onto the ±1 eigenspace of
    [p] selected by [outcome] ([false] = +1).  Returns [false] when
    the opposite outcome was deterministic (projection impossible);
    the state is then unchanged. *)
val postselect_pauli : t -> Pauli.t -> outcome:bool -> bool

(** [stabilizers s] lists the n stabilizer generators as Pauli
    operators with their signs. *)
val stabilizers : t -> Pauli.t list

(** [destabilizers s] lists the matching destabilizer generators. *)
val destabilizers : t -> Pauli.t list

(** [expectation s p] is:
    - [Some true] if [p] is in the stabilizer group (⟨p⟩ = +1),
    - [Some false] if [−p] is (⟨p⟩ = −1),
    - [None] if [p] anticommutes with some stabilizer (⟨p⟩ = 0).
    The phase of [p] must be real (±1); raises otherwise. *)
val expectation : t -> Pauli.t -> bool option

(** [run ?rng s c] executes a Clifford circuit (with measurements,
    resets and classical control) in place; returns the classical
    bits. *)
val run : ?rng:Random.State.t -> t -> Circuit.t -> bool array

(** [equal_states a b] compares the stabilizer groups (sign-sensitive,
    basis-independent): [true] iff both tableaux stabilize the same
    state. *)
val equal_states : t -> t -> bool

(** [pp] prints the stabilizer generators, one per line. *)
val pp : Format.formatter -> t -> unit
