module Bitvec = Gf2.Bitvec

(* Rows 0..n−1 are destabilizers, rows n..2n−1 stabilizers.  Row k is
   the Pauli (−1)^{r.(k)} · ∏_q X^{x.(k)_q} Z^{z.(k)_q} (with Y = XZ up
   to the phase bookkeeping of the g function below, per
   Aaronson–Gottesman 2004). *)
type t = {
  n : int;
  x : Bitvec.t array;
  z : Bitvec.t array;
  r : Bytes.t; (* sign bits, one per row *)
}

let get_r t k = Bytes.get t.r k <> '\000'
let set_r t k b = Bytes.set t.r k (if b then '\001' else '\000')
let flip_r t k = set_r t k (not (get_r t k))

let create n =
  if n <= 0 then invalid_arg "Tableau.create: need at least one qubit";
  let x = Array.init (2 * n) (fun _ -> Bitvec.create n) in
  let z = Array.init (2 * n) (fun _ -> Bitvec.create n) in
  for i = 0 to n - 1 do
    Bitvec.set x.(i) i true;
    (* destabilizer i = X_i *)
    Bitvec.set z.(n + i) i true (* stabilizer i = Z_i *)
  done;
  { n; x; z; r = Bytes.make (2 * n) '\000' }

let num_qubits t = t.n

let copy t =
  { n = t.n;
    x = Array.map Bitvec.copy t.x;
    z = Array.map Bitvec.copy t.z;
    r = Bytes.copy t.r }

let check_qubit t q =
  if q < 0 || q >= t.n then invalid_arg "Tableau: qubit out of range"

let h t q =
  check_qubit t q;
  for k = 0 to (2 * t.n) - 1 do
    let xb = Bitvec.get t.x.(k) q and zb = Bitvec.get t.z.(k) q in
    if xb && zb then flip_r t k;
    Bitvec.set t.x.(k) q zb;
    Bitvec.set t.z.(k) q xb
  done

let s_gate t q =
  check_qubit t q;
  for k = 0 to (2 * t.n) - 1 do
    let xb = Bitvec.get t.x.(k) q and zb = Bitvec.get t.z.(k) q in
    if xb && zb then flip_r t k;
    Bitvec.set t.z.(k) q (xb <> zb)
  done

let z t q =
  check_qubit t q;
  for k = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.x.(k) q then flip_r t k
  done

let x t q =
  check_qubit t q;
  for k = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.z.(k) q then flip_r t k
  done

let y t q =
  check_qubit t q;
  for k = 0 to (2 * t.n) - 1 do
    if Bitvec.get t.x.(k) q <> Bitvec.get t.z.(k) q then flip_r t k
  done

let sdg t q =
  s_gate t q;
  z t q

let cnot t c tgt =
  check_qubit t c;
  check_qubit t tgt;
  if c = tgt then invalid_arg "Tableau.cnot: equal operands";
  for k = 0 to (2 * t.n) - 1 do
    let xc = Bitvec.get t.x.(k) c
    and zc = Bitvec.get t.z.(k) c
    and xt = Bitvec.get t.x.(k) tgt
    and zt = Bitvec.get t.z.(k) tgt in
    if xc && zt && xt = zc then flip_r t k;
    Bitvec.set t.x.(k) tgt (xt <> xc);
    Bitvec.set t.z.(k) c (zc <> zt)
  done

let cz t a b =
  h t b;
  cnot t a b;
  h t b

let cy t control target =
  (* S X S† = Y, so conjugating the target by S turns CNOT into CY *)
  sdg t target;
  cnot t control target;
  s_gate t target

let swap t a b =
  cnot t a b;
  cnot t b a;
  cnot t a b

let apply_gate t = function
  | Circuit.H q -> h t q
  | Circuit.X q -> x t q
  | Circuit.Y q -> y t q
  | Circuit.Z q -> z t q
  | Circuit.S q -> s_gate t q
  | Circuit.Sdg q -> sdg t q
  | Circuit.Cnot (c, tgt) -> cnot t c tgt
  | Circuit.Cz (a, b) -> cz t a b
  | Circuit.Swap (a, b) -> swap t a b
  | Circuit.Toffoli _ ->
    invalid_arg "Tableau.apply_gate: Toffoli is not Clifford"

let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

(* Word-parallel phase accumulation for multiplying a source row
   (xi, zi) into a target row (xh, zh): Σ_q g(xi,zi,xh,zh) where g is
   Aaronson–Gottesman's per-qubit power of i.  Encoded as two disjoint
   masks: g = +1 on
     X·(XZ)  : xi ∧ ¬zi ∧ xh ∧ zh
     Z·X     : ¬xi ∧ zi ∧ xh ∧ ¬zh
     Y·Z     : xi ∧ zi ∧ zh ∧ ¬xh
   and g = −1 on the mirror cases. *)
let phase_acc xi zi xh zh =
  let acc = ref 0 in
  let open Int64 in
  for j = 0 to Bitvec.num_words xi - 1 do
    let a = Bitvec.get_word xi j
    and b = Bitvec.get_word zi j
    and c = Bitvec.get_word xh j
    and d = Bitvec.get_word zh j in
    let na = lognot a and nb = lognot b and nc = lognot c and nd = lognot d in
    let p =
      logor
        (logand (logand a nb) (logand c d))
        (logor
           (logand (logand na b) (logand c nd))
           (logand (logand a b) (logand d nc)))
    in
    let n =
      logor
        (logand (logand a nb) (logand d nc))
        (logor
           (logand (logand na b) (logand c d))
           (logand (logand a b) (logand c nd)))
    in
    acc := !acc + popcount64 p - popcount64 n
  done;
  !acc

(* row h := row h · row i *)
let rowsum t h i =
  let acc = phase_acc t.x.(i) t.z.(i) t.x.(h) t.z.(h) in
  let total =
    (2 * (if get_r t h then 1 else 0))
    + (2 * if get_r t i then 1 else 0)
    + acc
  in
  let m = ((total mod 4) + 4) mod 4 in
  (* the product of commuting real Pauli rows is real: m ∈ {0, 2} *)
  set_r t h (m = 2);
  Bitvec.xor_into ~src:t.x.(i) t.x.(h);
  Bitvec.xor_into ~src:t.z.(i) t.z.(h)

let measure_is_random t q =
  check_qubit t q;
  let rec loop k = k < 2 * t.n && (Bitvec.get t.x.(k) q || loop (k + 1)) in
  loop t.n

let measure_rng t rng q =
  check_qubit t q;
  (* find a stabilizer row with x_q = 1 *)
  let p = ref (-1) in
  (try
     for k = t.n to (2 * t.n) - 1 do
       if Bitvec.get t.x.(k) q then begin
         p := k;
         raise Exit
       end
     done
   with Exit -> ());
  if !p >= 0 then begin
    let p = !p in
    (* random outcome *)
    for k = 0 to (2 * t.n) - 1 do
      if k <> p && Bitvec.get t.x.(k) q then rowsum t k p
    done;
    (* destabilizer p−n := old stabilizer p; stabilizer p := ±Z_q *)
    Bitvec.blit ~src:t.x.(p) t.x.(p - t.n);
    Bitvec.blit ~src:t.z.(p) t.z.(p - t.n);
    set_r t (p - t.n) (get_r t p);
    let outcome = Mc.Rng.bool rng in
    Bitvec.clear t.x.(p);
    Bitvec.clear t.z.(p);
    Bitvec.set t.z.(p) q true;
    set_r t p outcome;
    outcome
  end
  else begin
    (* deterministic outcome: accumulate into a scratch row *)
    let sx = Bitvec.create t.n and sz = Bitvec.create t.n in
    let sr = ref 0 in
    for i = 0 to t.n - 1 do
      if Bitvec.get t.x.(i) q then begin
        (* multiply stabilizer i+n into scratch *)
        let acc = phase_acc t.x.(i + t.n) t.z.(i + t.n) sx sz in
        let total =
          (2 * !sr) + (2 * if get_r t (i + t.n) then 1 else 0) + acc
        in
        sr := if ((total mod 4) + 4) mod 4 = 2 then 1 else 0;
        Bitvec.xor_into ~src:t.x.(i + t.n) sx;
        Bitvec.xor_into ~src:t.z.(i + t.n) sz
      end
    done;
    !sr = 1
  end

let measure_x_rng t rng q =
  h t q;
  let outcome = measure_rng t rng q in
  h t q;
  outcome

let reset_rng t rng q = if measure_rng t rng q then x t q

(* Legacy [Random.State.t] entry points: thin wrappers over the
   [Mc.Rng] signatures; [Mc.Rng.of_random_state] delegates each draw
   to the wrapped state, so these behave bit-identically to the
   pre-unification code. *)
let measure t rng q = measure_rng t (Mc.Rng.of_random_state rng) q
let measure_x t rng q = measure_x_rng t (Mc.Rng.of_random_state rng) q
let reset t rng q = reset_rng t (Mc.Rng.of_random_state rng) q

let row_pauli t k =
  (* A row is (−1)^r times the tensor of literal letters (Y literal,
     Hermitian) — the convention under which the g function above is
     derived. *)
  Pauli.of_bits ~phase:(if get_r t k then 2 else 0) ~x:t.x.(k) ~z:t.z.(k) ()

let stabilizers t = List.init t.n (fun i -> row_pauli t (i + t.n))
let destabilizers t = List.init t.n (fun i -> row_pauli t i)

let anticommutes_with_row t k (p : Pauli.t) =
  let px = Pauli.x_bits p and pz = Pauli.z_bits p in
  Bitvec.dot t.x.(k) pz <> Bitvec.dot t.z.(k) px

let apply_pauli t p =
  if Pauli.num_qubits p <> t.n then invalid_arg "Tableau.apply_pauli";
  for k = 0 to (2 * t.n) - 1 do
    if anticommutes_with_row t k p then flip_r t k
  done

let expectation t p =
  if Pauli.num_qubits p <> t.n then invalid_arg "Tableau.expectation";
  (match Pauli.phase p with
  | 0 | 2 -> ()
  | _ -> invalid_arg "Tableau.expectation: phase must be ±1");
  (* p commutes with all stabilizers iff its expectation is ±1 *)
  let commutes_all =
    let rec loop_stab k =
      k >= 2 * t.n
      || ((not (anticommutes_with_row t k p)) && loop_stab (k + 1))
    in
    loop_stab t.n
  in
  if not commutes_all then None
  else begin
    (* coefficient of stabilizer i = (p anticommutes with destabilizer i) *)
    let product = ref (Pauli.identity t.n) in
    for i = 0 to t.n - 1 do
      if anticommutes_with_row t i p then
        product := Pauli.mul !product (row_pauli t (i + t.n))
    done;
    if Pauli.equal !product p then Some true
    else if Pauli.equal !product (Pauli.neg p) then Some false
    else
      (* p commutes with the group but is not in it up to sign: can
         only happen if the tableau is corrupt. *)
      invalid_arg "Tableau.expectation: inconsistent tableau"
  end

(* --- general Pauli measurement ------------------------------------- *)

let check_hermitian p =
  match Pauli.phase p with
  | 0 -> false
  | 2 -> true
  | _ -> invalid_arg "Tableau: Pauli observable must have phase ±1"

let find_anticommuting_stab t p =
  let rec loop k =
    if k >= 2 * t.n then None
    else if anticommutes_with_row t k p then Some k
    else loop (k + 1)
  in
  loop t.n

(* Collapse onto the [outcome] eigenspace of [p], given [row] is a
   stabilizer row anticommuting with [p]. *)
let collapse t p row ~outcome =
  let negated = check_hermitian p in
  for k = 0 to (2 * t.n) - 1 do
    if k <> row && anticommutes_with_row t k p then rowsum t k row
  done;
  Bitvec.blit ~src:t.x.(row) t.x.(row - t.n);
  Bitvec.blit ~src:t.z.(row) t.z.(row - t.n);
  set_r t (row - t.n) (get_r t row);
  Bitvec.blit ~src:(Pauli.x_bits p) t.x.(row);
  Bitvec.blit ~src:(Pauli.z_bits p) t.z.(row);
  set_r t row (negated <> outcome)

(* Deterministic expectation as an outcome bit, assuming [p] commutes
   with the whole stabilizer group. *)
let deterministic_outcome t p =
  let product = ref (Pauli.identity t.n) in
  for i = 0 to t.n - 1 do
    if anticommutes_with_row t i p then
      product := Pauli.mul !product (row_pauli t (i + t.n))
  done;
  if Pauli.equal !product p then false
  else if Pauli.equal !product (Pauli.neg p) then true
  else invalid_arg "Tableau: inconsistent tableau in Pauli measurement"

let measure_pauli_rng t rng p =
  if Pauli.num_qubits p <> t.n then invalid_arg "Tableau.measure_pauli";
  ignore (check_hermitian p);
  match find_anticommuting_stab t p with
  | Some row ->
    let outcome = Mc.Rng.bool rng in
    collapse t p row ~outcome;
    outcome
  | None -> deterministic_outcome t p

let measure_pauli t rng p = measure_pauli_rng t (Mc.Rng.of_random_state rng) p

let postselect_pauli t p ~outcome =
  if Pauli.num_qubits p <> t.n then invalid_arg "Tableau.postselect_pauli";
  ignore (check_hermitian p);
  match find_anticommuting_stab t p with
  | Some row ->
    collapse t p row ~outcome;
    true
  | None -> Bool.equal (deterministic_outcome t p) outcome

let default_rng = lazy (Random.State.make [| 0x7ab1ea |])

let run ?rng t c =
  let rng = match rng with Some r -> r | None -> Lazy.force default_rng in
  if Circuit.num_qubits c <> t.n then
    invalid_arg "Tableau.run: register size mismatch";
  let cbits = Array.make (Circuit.num_cbits c) false in
  List.iter
    (fun instr ->
      match instr with
      | Circuit.Gate g -> apply_gate t g
      | Circuit.Measure { qubit; cbit } -> cbits.(cbit) <- measure t rng qubit
      | Circuit.Measure_x { qubit; cbit } ->
        cbits.(cbit) <- measure_x t rng qubit
      | Circuit.Reset q -> reset t rng q
      | Circuit.Cond { cbit; gate } -> if cbits.(cbit) then apply_gate t gate
      | Circuit.Cond_parity { cbits = bs; gate } ->
        let parity =
          List.fold_left (fun acc b -> acc <> cbits.(b)) false bs
        in
        if parity then apply_gate t gate
      | Circuit.Tick -> ())
    (Circuit.instrs c);
  cbits

let equal_states a b =
  a.n = b.n
  &&
  (* every stabilizer of b must have expectation +1 in a, and vice
     versa is then automatic (both groups are maximal). *)
  List.for_all (fun p -> expectation a p = Some true) (stabilizers b)

let pp fmt t =
  List.iteri
    (fun i p ->
      if i > 0 then Format.pp_print_newline fmt ();
      Pauli.pp fmt p)
    (stabilizers t)
