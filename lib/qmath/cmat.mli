(** Dense complex matrices and vectors for small-dimension quantum
    linear algebra (gate matrices, small-system checks).

    Vectors are plain [Cx.t array]s; matrices are row-major 2-D arrays.
    These are used for verification and gate definitions, not for bulk
    state evolution (see the [statevec] library for that). *)

type t

(** [make ~rows ~cols f] builds the matrix with entries [f i j]. *)
val make : rows:int -> cols:int -> (int -> int -> Cx.t) -> t

(** [zero ~rows ~cols] / [identity n] are the obvious matrices. *)
val zero : rows:int -> cols:int -> t

val identity : int -> t

(** [of_lists xss] builds a matrix from row lists (non-ragged,
    nonempty). *)
val of_lists : Cx.t list list -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [smul z m] scales every entry by [z]. *)
val smul : Cx.t -> t -> t

(** [dagger m] is the conjugate transpose. *)
val dagger : t -> t

(** [kron a b] is the Kronecker (tensor) product. *)
val kron : t -> t -> t

(** [kron_list ms] folds {!kron} over a nonempty list, left to right. *)
val kron_list : t list -> t

(** [apply m v] is the matrix–vector product. *)
val apply : t -> Cx.t array -> Cx.t array

(** [trace m] is the trace of a square matrix. *)
val trace : t -> Cx.t

(** [equal ?tol a b] is entrywise approximate equality. *)
val equal : ?tol:float -> t -> t -> bool

(** [is_unitary ?tol m] checks m·m† ≈ I. *)
val is_unitary : ?tol:float -> t -> bool

(** [proportional ?tol a b] is [true] when [a = z·b] for some unit-free
    complex scalar [z] (global-phase-insensitive comparison). *)
val proportional : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
