type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let minus_one = { re = -1.0; im = 0.0 }
let make re im = { re; im }
let re x = { re = x; im = 0.0 }
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let scale a z = { re = a *. z.re; im = a *. z.im }
let norm2 = Complex.norm2
let norm = Complex.norm
let exp_i theta = { re = cos theta; im = sin theta }

let approx ?(tol = 1e-9) a b = norm (sub a b) <= tol

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div

let pp fmt z =
  if Float.abs z.im < 1e-12 then Format.fprintf fmt "%g" z.re
  else if Float.abs z.re < 1e-12 then Format.fprintf fmt "%gi" z.im
  else Format.fprintf fmt "(%g%+gi)" z.re z.im
