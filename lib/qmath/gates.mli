(** Standard gate matrices used throughout the paper (Eqs. 5, 9, 19,
    20, 22 and Fig. 1), as 2×2 / 4×4 / 8×8 unitaries. *)

(** Pauli X (Eq. 5 case 2). *)
val x : Cmat.t

(** Pauli Z (Eq. 5 case 3). *)
val z : Cmat.t

(** Pauli Y defined as X·Z per the paper's Eq. 5 case 4 (differs from
    the textbook iXZ by a global phase). *)
val y_paper : Cmat.t

(** Textbook Pauli Y = iXZ. *)
val y : Cmat.t

(** Hadamard rotation R (Eq. 9). *)
val h : Cmat.t

(** The R' basis change used to turn Y into Z (Eq. 20). *)
val r' : Cmat.t

(** Phase gate P = diag(1, i) (Eq. 22). *)
val s : Cmat.t

(** Adjoint phase gate P⁻¹. *)
val sdg : Cmat.t

(** 2×2 identity. *)
val id2 : Cmat.t

(** XOR / controlled-NOT on (control, target) in the computational
    basis ordering |c t⟩ with the control as the more significant bit
    (Fig. 1 middle). *)
val cnot : Cmat.t

(** Controlled-Z. *)
val cz : Cmat.t

(** Two-qubit SWAP. *)
val swap : Cmat.t

(** Toffoli / controlled-controlled-NOT on |c₁ c₂ t⟩ (Fig. 1 right). *)
val toffoli : Cmat.t

(** [rz theta] = diag(1, e^{iθ}). *)
val rz : float -> Cmat.t

(** [pauli_of_char c] maps 'I'/'X'/'Y'/'Z' to the 2×2 matrix
    (textbook Y). Raises [Invalid_argument] otherwise. *)
val pauli_of_char : char -> Cmat.t
