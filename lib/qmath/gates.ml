let c = Cx.re
let ci = Cx.make

let x = Cmat.of_lists [ [ c 0.; c 1. ]; [ c 1.; c 0. ] ]
let z = Cmat.of_lists [ [ c 1.; c 0. ]; [ c 0.; c (-1.) ] ]
let y_paper = Cmat.mul x z
let y = Cmat.of_lists [ [ c 0.; ci 0. (-1.) ]; [ ci 0. 1.; c 0. ] ]

let h =
  let s = 1.0 /. sqrt 2.0 in
  Cmat.of_lists [ [ c s; c s ]; [ c s; c (-.s) ] ]

let r' =
  let s = 1.0 /. sqrt 2.0 in
  Cmat.of_lists [ [ c s; ci 0. s ]; [ ci 0. s; c s ] ]

let s = Cmat.of_lists [ [ c 1.; c 0. ]; [ c 0.; ci 0. 1. ] ]
let sdg = Cmat.of_lists [ [ c 1.; c 0. ]; [ c 0.; ci 0. (-1.) ] ]
let id2 = Cmat.identity 2

let cnot =
  Cmat.of_lists
    [ [ c 1.; c 0.; c 0.; c 0. ];
      [ c 0.; c 1.; c 0.; c 0. ];
      [ c 0.; c 0.; c 0.; c 1. ];
      [ c 0.; c 0.; c 1.; c 0. ] ]

let cz =
  Cmat.of_lists
    [ [ c 1.; c 0.; c 0.; c 0. ];
      [ c 0.; c 1.; c 0.; c 0. ];
      [ c 0.; c 0.; c 1.; c 0. ];
      [ c 0.; c 0.; c 0.; c (-1.) ] ]

let swap =
  Cmat.of_lists
    [ [ c 1.; c 0.; c 0.; c 0. ];
      [ c 0.; c 0.; c 1.; c 0. ];
      [ c 0.; c 1.; c 0.; c 0. ];
      [ c 0.; c 0.; c 0.; c 1. ] ]

let toffoli =
  (* permutation matrix: flip the target bit when both controls are set *)
  Cmat.make ~rows:8 ~cols:8 (fun i j ->
      let flip k = if k land 0b110 = 0b110 then k lxor 1 else k in
      if i = flip j then Cx.one else Cx.zero)

let rz theta =
  Cmat.of_lists [ [ c 1.; c 0. ]; [ c 0.; Cx.exp_i theta ] ]

let pauli_of_char = function
  | 'I' -> id2
  | 'X' -> x
  | 'Y' -> y
  | 'Z' -> z
  | ch -> invalid_arg (Printf.sprintf "Gates.pauli_of_char: %c" ch)
