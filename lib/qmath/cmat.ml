type t = Cx.t array array

let make ~rows ~cols f = Array.init rows (fun i -> Array.init cols (f i))
let zero ~rows ~cols = make ~rows ~cols (fun _ _ -> Cx.zero)
let identity n = make ~rows:n ~cols:n (fun i j -> if i = j then Cx.one else Cx.zero)

let of_lists xss =
  match xss with
  | [] -> invalid_arg "Cmat.of_lists: empty"
  | first :: _ ->
    let cols = List.length first in
    Array.of_list
      (List.map
         (fun xs ->
           if List.length xs <> cols then invalid_arg "Cmat.of_lists: ragged";
           Array.of_list xs)
         xss)

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let get m i j = m.(i).(j)
let set m i j z = m.(i).(j) <- z

let check_same a b =
  if rows a <> rows b || cols a <> cols b then invalid_arg "Cmat: shape mismatch"

let add a b =
  check_same a b;
  make ~rows:(rows a) ~cols:(cols a) (fun i j -> Cx.add a.(i).(j) b.(i).(j))

let sub a b =
  check_same a b;
  make ~rows:(rows a) ~cols:(cols a) (fun i j -> Cx.sub a.(i).(j) b.(i).(j))

let mul a b =
  if cols a <> rows b then invalid_arg "Cmat.mul: dimension mismatch";
  let n = cols a in
  make ~rows:(rows a) ~cols:(cols b) (fun i j ->
      let acc = ref Cx.zero in
      for k = 0 to n - 1 do
        acc := Cx.add !acc (Cx.mul a.(i).(k) b.(k).(j))
      done;
      !acc)

let smul z m = make ~rows:(rows m) ~cols:(cols m) (fun i j -> Cx.mul z m.(i).(j))

let dagger m = make ~rows:(cols m) ~cols:(rows m) (fun i j -> Cx.conj m.(j).(i))

let kron a b =
  let ra = rows a and ca = cols a and rb = rows b and cb = cols b in
  make ~rows:(ra * rb) ~cols:(ca * cb) (fun i j ->
      Cx.mul a.(i / rb).(j / cb) b.(i mod rb).(j mod cb))

let kron_list = function
  | [] -> invalid_arg "Cmat.kron_list: empty"
  | m :: ms -> List.fold_left kron m ms

let apply m v =
  if cols m <> Array.length v then invalid_arg "Cmat.apply";
  Array.init (rows m) (fun i ->
      let acc = ref Cx.zero in
      for j = 0 to Array.length v - 1 do
        acc := Cx.add !acc (Cx.mul m.(i).(j) v.(j))
      done;
      !acc)

let trace m =
  if rows m <> cols m then invalid_arg "Cmat.trace: not square";
  let acc = ref Cx.zero in
  for i = 0 to rows m - 1 do
    acc := Cx.add !acc m.(i).(i)
  done;
  !acc

let equal ?(tol = 1e-9) a b =
  rows a = rows b && cols a = cols b
  &&
  let ok = ref true in
  for i = 0 to rows a - 1 do
    for j = 0 to cols a - 1 do
      if not (Cx.approx ~tol a.(i).(j) b.(i).(j)) then ok := false
    done
  done;
  !ok

let is_unitary ?(tol = 1e-9) m =
  rows m = cols m && equal ~tol (mul m (dagger m)) (identity (rows m))

let proportional ?(tol = 1e-9) a b =
  rows a = rows b && cols a = cols b
  &&
  (* find the largest entry of b to fix the scalar *)
  let best = ref Cx.zero and besta = ref Cx.zero and bestn = ref 0.0 in
  for i = 0 to rows b - 1 do
    for j = 0 to cols b - 1 do
      let n = Cx.norm2 b.(i).(j) in
      if n > !bestn then begin
        bestn := n;
        best := b.(i).(j);
        besta := a.(i).(j)
      end
    done
  done;
  if !bestn < tol *. tol then equal ~tol a b
  else
    let z = Cx.div !besta !best in
    Float.abs (Cx.norm z -. 1.0) <= 1e-6 && equal ~tol a (smul z b)

let pp fmt m =
  for i = 0 to rows m - 1 do
    if i > 0 then Format.pp_print_newline fmt ();
    Array.iteri
      (fun j z ->
        if j > 0 then Format.pp_print_string fmt "  ";
        Cx.pp fmt z)
      m.(i)
  done
