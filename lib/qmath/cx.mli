(** Complex scalars: a thin veneer over [Stdlib.Complex] with the
    arithmetic operators and approximate comparison used throughout
    the simulators. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t
val minus_one : t

(** [make re im] builds a complex number. *)
val make : float -> float -> t

(** [re x] embeds a real number. *)
val re : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

(** [conj z] is the complex conjugate. *)
val conj : t -> t

(** [scale a z] multiplies by the real scalar [a]. *)
val scale : float -> t -> t

(** [norm2 z] is |z|². *)
val norm2 : t -> float

(** [norm z] is |z|. *)
val norm : t -> float

(** [exp_i theta] is e^{iθ}. *)
val exp_i : float -> t

(** [approx ?tol a b] is [true] when |a − b| ≤ tol (default 1e-9). *)
val approx : ?tol:float -> t -> t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val pp : Format.formatter -> t -> unit
