(** Shor's 9-qubit code — the first quantum error-correcting code
    (ref. 10), a CSS code concatenating the 3-bit repetition codes for
    bit flips and phase flips.  Distance 3. *)

val code : Stabilizer_code.t

(** [encoding_circuit ()] encodes the unknown state on
    {!input_qubit} into the 9-qubit block. *)
val encoding_circuit : unit -> Circuit.t

val input_qubit : int

(** The CSS parity checks: H_Z's six rows are the Z-pair checks, H_X's
    two rows the block X checks. *)
val hx : Gf2.Mat.t

val hz : Gf2.Mat.t
