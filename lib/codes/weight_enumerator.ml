module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

let distribution basis =
  let k = Mat.rows basis and n = Mat.cols basis in
  if k > 20 then invalid_arg "Weight_enumerator: too many basis rows";
  if Mat.rank basis <> k then
    invalid_arg "Weight_enumerator: dependent basis rows";
  let dist = Array.make (n + 1) 0 in
  for mask = 0 to (1 lsl k) - 1 do
    let w = Mat.vec_mul (Bitvec.of_int ~width:k mask) basis in
    dist.(Bitvec.weight w) <- dist.(Bitvec.weight w) + 1
  done;
  dist

let dual_distribution basis =
  match Mat.kernel basis with
  | [] ->
    (* the dual of the full space: only the zero word *)
    let d = Array.make (Mat.cols basis + 1) 0 in
    d.(0) <- 1;
    d
  | rows -> distribution (Mat.of_rows rows)

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let krawtchouk ~n ~j i =
  let acc = ref 0 in
  for l = 0 to j do
    let term = binomial i l * binomial (n - i) (j - l) in
    acc := !acc + if l land 1 = 1 then -term else term
  done;
  !acc

let macwilliams_transform ~n dist =
  let size = Array.fold_left ( + ) 0 dist in
  Array.init (n + 1) (fun j ->
      let acc = ref 0 in
      Array.iteri
        (fun i a -> if a <> 0 then acc := !acc + (a * krawtchouk ~n ~j i))
        dist;
      if !acc mod size <> 0 then
        invalid_arg "Weight_enumerator: non-integral transform (bad input)";
      !acc / size)

let minimum_distance basis =
  let dist = distribution basis in
  let rec find w =
    if w > Mat.cols basis then invalid_arg "Weight_enumerator: trivial code"
    else if dist.(w) > 0 then w
    else find (w + 1)
  in
  find 1
