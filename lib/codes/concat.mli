(** Code concatenation (§5, Fig. 14): each qubit of the outer block
    is itself a block of the inner code.  [concatenate outer inner]
    with outer [[n₁,1]] and inner [[n₂,1]] yields [[n₁·n₂,1]]: the
    generators are every inner generator on every subblock, plus the
    outer generators with each letter replaced by the corresponding
    inner logical operator.

    [steane_level l] is the L-level concatenated Steane code of block
    size 7^L (Fig. 14); [steane_level 1] = {!Steane.code}.  Only small
    [l] is practical as an explicit code (7² = 49 qubits is cheap,
    7³ = 343 still fine for the tableau). *)

val concatenate : Stabilizer_code.t -> Stabilizer_code.t -> Stabilizer_code.t

val steane_level : int -> Stabilizer_code.t
