let letters = [| Pauli.I; Pauli.X; Pauli.Y; Pauli.Z |]

let failure_polynomial (code : Stabilizer_code.t) decoder =
  if code.k <> 1 then invalid_arg "Exact: k = 1 codes only";
  if code.n > 12 then invalid_arg "Exact: n <= 12 (4^n enumeration)";
  let n = code.n in
  let cx = Array.make (n + 1) 0.0 in
  let cy = Array.make (n + 1) 0.0 in
  let cz = Array.make (n + 1) 0.0 in
  let digits = Array.make n 0 in
  let patterns = 1 lsl (2 * n) in
  for v = 0 to patterns - 1 do
    let weight = ref 0 in
    for q = 0 to n - 1 do
      let d = (v lsr (2 * q)) land 3 in
      digits.(q) <- d;
      if d <> 0 then incr weight
    done;
    let e = Pauli.of_letters (List.init n (fun q -> letters.(digits.(q)))) in
    match Pauli_frame.residual_class code decoder e with
    | Some Pauli_frame.L_i -> ()
    | Some Pauli_frame.L_x -> cx.(!weight) <- cx.(!weight) +. 1.0
    | Some Pauli_frame.L_z -> cz.(!weight) <- cz.(!weight) +. 1.0
    | Some Pauli_frame.L_y | None -> cy.(!weight) <- cy.(!weight) +. 1.0
  done;
  (cx, cy, cz)

let probability_from_polynomial poly ~n ~eps =
  let p = eps /. 3.0 and q = 1.0 -. eps in
  let acc = ref 0.0 in
  for w = 0 to n do
    if poly.(w) > 0.0 then
      acc :=
        !acc
        +. (poly.(w) *. (p ** float_of_int w) *. (q ** float_of_int (n - w)))
  done;
  !acc

let poly_cache : (string, float array * float array * float array) Hashtbl.t =
  Hashtbl.create 4

let cached_polynomial code decoder =
  match Hashtbl.find_opt poly_cache code.Stabilizer_code.name with
  | Some p -> p
  | None ->
    let p = failure_polynomial code decoder in
    Hashtbl.add poly_cache code.Stabilizer_code.name p;
    p

let failure_probability ?(metric = `Any) code decoder ~eps =
  let cx, cy, cz = cached_polynomial code decoder in
  let n = code.Stabilizer_code.n in
  let px = probability_from_polynomial cx ~n ~eps in
  let py = probability_from_polynomial cy ~n ~eps in
  let pz = probability_from_polynomial cz ~n ~eps in
  match metric with
  | `Any -> px +. py +. pz
  | `Basis_avg ->
    (* Z basis detects X̄/Ȳ; X basis detects Z̄/Ȳ; average *)
    (0.5 *. (px +. pz)) +. py

let pseudothreshold ?(metric = `Any) code decoder =
  let bare eps = match metric with `Any -> eps | `Basis_avg -> 2.0 *. eps /. 3.0 in
  let f eps = failure_probability ~metric code decoder ~eps -. bare eps in
  let lo = 1e-6 and hi = 0.5 in
  if f lo >= 0.0 then None (* encoding never wins *)
  else if f hi <= 0.0 then None (* never crosses back *)
  else begin
    let lo = ref lo and hi = ref hi in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if f mid < 0.0 then lo := mid else hi := mid
    done;
    Some (0.5 *. (!lo +. !hi))
  end
