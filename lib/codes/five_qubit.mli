(** The [[5,1,3]] "perfect" code (§4.2, refs. 36–37): the smallest
    code correcting an arbitrary single-qubit error.  Non-CSS — its
    gate implementations are far less convenient than Steane's
    (E13). *)

val code : Stabilizer_code.t
