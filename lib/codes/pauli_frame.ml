module Bitvec = Gf2.Bitvec
module Code = Stabilizer_code

type logical_class = L_i | L_x | L_y | L_z

let class_to_string = function
  | L_i -> "I"
  | L_x -> "X"
  | L_y -> "Y"
  | L_z -> "Z"

let class_bits = function
  | L_i -> (false, false)
  | L_x -> (true, false)
  | L_z -> (false, true)
  | L_y -> (true, true)

let class_of_bits = function
  | false, false -> L_i
  | true, false -> L_x
  | false, true -> L_z
  | true, true -> L_y

let compose a b =
  let ax, az = class_bits a and bx, bz = class_bits b in
  class_of_bits (ax <> bx, az <> bz)

let letter_of_class = function
  | L_i -> Pauli.I
  | L_x -> Pauli.X
  | L_y -> Pauli.Y
  | L_z -> Pauli.Z

let classify_residual (code : Code.t) r =
  (* assumes r commutes with every generator *)
  let has_x = not (Pauli.commutes r code.Code.logical_z.(0)) in
  let has_z = not (Pauli.commutes r code.Code.logical_x.(0)) in
  class_of_bits (has_x, has_z)

let residual_class (code : Code.t) decoder e =
  if code.Code.k <> 1 then invalid_arg "Pauli_frame: k = 1 codes only";
  match Code.decode decoder (Code.syndrome code e) with
  | None -> None
  | Some c -> Some (classify_residual code (Pauli.mul c e))

let steane_decoder = lazy (Steane.css_decoder ())

let steane_class e =
  match residual_class Steane.code (Lazy.force steane_decoder) e with
  | Some cls -> cls
  | None -> assert false (* the CSS table covers all 64 syndromes *)

let sub_pauli e ~pos ~len =
  let x = Pauli.x_bits e and z = Pauli.z_bits e in
  Pauli.of_bits ~x:(Bitvec.sub x ~pos ~len) ~z:(Bitvec.sub z ~pos ~len) ()

let rec concatenated_steane_class ~level e =
  if level < 1 then invalid_arg "Pauli_frame: level >= 1";
  if level = 1 then steane_class e
  else begin
    let n_in = Pauli.num_qubits e / 7 in
    let letters =
      List.init 7 (fun b ->
          letter_of_class
            (concatenated_steane_class ~level:(level - 1)
               (sub_pauli e ~pos:(b * n_in) ~len:n_in)))
    in
    steane_class (Pauli.of_letters letters)
  end

let sample_pauli rng ~px ~py ~pz ~n =
  let x = Bitvec.create n and z = Bitvec.create n in
  for q = 0 to n - 1 do
    let r = Random.State.float rng 1.0 in
    if r < px then Bitvec.set x q true
    else if r < px +. py then begin
      Bitvec.set x q true;
      Bitvec.set z q true
    end
    else if r < px +. py +. pz then Bitvec.set z q true
  done;
  Pauli.of_bits ~x ~z ()

let depolarize rng ~eps ~n =
  let p = eps /. 3.0 in
  sample_pauli rng ~px:p ~py:p ~pz:p ~n

let biased_depolarize rng ~eps ~eta ~n =
  if eta <= 0.0 then invalid_arg "Pauli_frame.biased_depolarize: eta > 0";
  let unit = eps /. (eta +. 2.0) in
  sample_pauli rng ~px:unit ~py:unit ~pz:(eta *. unit) ~n

type estimate = { failures : int; trials : int; rate : float; stderr : float }

let estimate ~failures ~trials =
  let rate = float_of_int failures /. float_of_int trials in
  let stderr =
    sqrt (Float.max (rate *. (1.0 -. rate)) 1e-12 /. float_of_int trials)
  in
  { failures; trials; rate; stderr }

(* One memory trial: [noise_sample] draws a fresh Pauli error from the
   supplied stream each round; [decode] classifies the residual. *)
let memory_trial ~noise_sample ~decode ~rounds rng =
  let cls = ref L_i in
  for _ = 1 to rounds do
    match decode (noise_sample rng) with
    | Some c -> cls := compose !cls c
    | None -> cls := compose !cls L_y (* undecodable: count as failed *)
  done;
  !cls <> L_i

let run_memory ~noise_sample ~decode ~rounds ~trials rng =
  let failures = ref 0 in
  for _ = 1 to trials do
    if memory_trial ~noise_sample ~decode ~rounds rng then incr failures
  done;
  estimate ~failures:!failures ~trials

let run_memory_mc ?domains ~noise_sample ~decode ~rounds ~trials ~seed () =
  Mc.Runner.estimate ?domains ~trials ~seed (fun rng _ ->
      memory_trial ~noise_sample ~decode ~rounds rng)

let memory_failure ~level ~eps ~rounds ~trials rng =
  let n = int_of_float (7.0 ** float_of_int level) in
  run_memory
    ~noise_sample:(fun rng -> depolarize rng ~eps ~n)
    ~decode:(fun e -> Some (concatenated_steane_class ~level e))
    ~rounds ~trials rng

let memory_failure_mc ?domains ~level ~eps ~rounds ~trials ~seed () =
  let n = int_of_float (7.0 ** float_of_int level) in
  run_memory_mc ?domains
    ~noise_sample:(fun rng -> depolarize rng ~eps ~n)
    ~decode:(fun e -> Some (concatenated_steane_class ~level e))
    ~rounds ~trials ~seed ()

let code_memory_failure code decoder ~eps ~rounds ~trials rng =
  run_memory
    ~noise_sample:(fun rng -> depolarize rng ~eps ~n:code.Code.n)
    ~decode:(fun e -> residual_class code decoder e)
    ~rounds ~trials rng

let code_memory_failure_mc ?domains code decoder ~eps ~rounds ~trials ~seed ()
    =
  run_memory_mc ?domains
    ~noise_sample:(fun rng -> depolarize rng ~eps ~n:code.Code.n)
    ~decode:(fun e -> residual_class code decoder e)
    ~rounds ~trials ~seed ()

let memory_failure_biased ~level ~eps ~eta ~rounds ~trials rng =
  let n = int_of_float (7.0 ** float_of_int level) in
  run_memory
    ~noise_sample:(fun rng -> biased_depolarize rng ~eps ~eta ~n)
    ~decode:(fun e -> Some (concatenated_steane_class ~level e))
    ~rounds ~trials rng

let memory_failure_biased_mc ?domains ~level ~eps ~eta ~rounds ~trials ~seed
    () =
  let n = int_of_float (7.0 ** float_of_int level) in
  run_memory_mc ?domains
    ~noise_sample:(fun rng -> biased_depolarize rng ~eps ~eta ~n)
    ~decode:(fun e -> Some (concatenated_steane_class ~level e))
    ~rounds ~trials ~seed ()
