module Bitvec = Gf2.Bitvec
module Code = Stabilizer_code

type logical_class = L_i | L_x | L_y | L_z

let class_to_string = function
  | L_i -> "I"
  | L_x -> "X"
  | L_y -> "Y"
  | L_z -> "Z"

let class_bits = function
  | L_i -> (false, false)
  | L_x -> (true, false)
  | L_z -> (false, true)
  | L_y -> (true, true)

let class_of_bits = function
  | false, false -> L_i
  | true, false -> L_x
  | false, true -> L_z
  | true, true -> L_y

let compose a b =
  let ax, az = class_bits a and bx, bz = class_bits b in
  class_of_bits (ax <> bx, az <> bz)

let letter_of_class = function
  | L_i -> Pauli.I
  | L_x -> Pauli.X
  | L_y -> Pauli.Y
  | L_z -> Pauli.Z

let classify_residual (code : Code.t) r =
  (* assumes r commutes with every generator *)
  let has_x = not (Pauli.commutes r code.Code.logical_z.(0)) in
  let has_z = not (Pauli.commutes r code.Code.logical_x.(0)) in
  class_of_bits (has_x, has_z)

let residual_class (code : Code.t) decoder e =
  if code.Code.k <> 1 then invalid_arg "Pauli_frame: k = 1 codes only";
  match Code.decode decoder (Code.syndrome code e) with
  | None -> None
  | Some c -> Some (classify_residual code (Pauli.mul c e))

let steane_decoder = lazy (Steane.css_decoder ())

let steane_class e =
  match residual_class Steane.code (Lazy.force steane_decoder) e with
  | Some cls -> cls
  | None -> assert false (* the CSS table covers all 64 syndromes *)

let sub_pauli e ~pos ~len =
  let x = Pauli.x_bits e and z = Pauli.z_bits e in
  Pauli.of_bits ~x:(Bitvec.sub x ~pos ~len) ~z:(Bitvec.sub z ~pos ~len) ()

let rec concatenated_steane_class ~level e =
  if level < 1 then invalid_arg "Pauli_frame: level >= 1";
  if level = 1 then steane_class e
  else begin
    let n_in = Pauli.num_qubits e / 7 in
    let letters =
      List.init 7 (fun b ->
          letter_of_class
            (concatenated_steane_class ~level:(level - 1)
               (sub_pauli e ~pos:(b * n_in) ~len:n_in)))
    in
    steane_class (Pauli.of_letters letters)
  end

(* [Mc.Rng.t] is the primary randomness interface; the
   [Random.State.t] entry points below wrap the state
   ([Mc.Rng.of_random_state] shares it, so draws are bit-identical to
   the pre-unification code). *)
let sample_pauli rng ~px ~py ~pz ~n =
  let x = Bitvec.create n and z = Bitvec.create n in
  for q = 0 to n - 1 do
    let r = Mc.Rng.float rng 1.0 in
    if r < px then Bitvec.set x q true
    else if r < px +. py then begin
      Bitvec.set x q true;
      Bitvec.set z q true
    end
    else if r < px +. py +. pz then Bitvec.set z q true
  done;
  Pauli.of_bits ~x ~z ()

let depolarize_rng rng ~eps ~n =
  let p = eps /. 3.0 in
  sample_pauli rng ~px:p ~py:p ~pz:p ~n

let depolarize rng ~eps ~n = depolarize_rng (Mc.Rng.of_random_state rng) ~eps ~n

let biased_depolarize_rng rng ~eps ~eta ~n =
  if eta <= 0.0 then invalid_arg "Pauli_frame.biased_depolarize: eta > 0";
  let unit = eps /. (eta +. 2.0) in
  sample_pauli rng ~px:unit ~py:unit ~pz:(eta *. unit) ~n

let biased_depolarize rng ~eps ~eta ~n =
  biased_depolarize_rng (Mc.Rng.of_random_state rng) ~eps ~eta ~n

(* One estimate record for the whole library (Mc.Stats.estimate). *)
type estimate = Mc.Stats.estimate = {
  failures : int;
  trials : int;
  rate : float;
  stderr : float;
  ci_low : float;
  ci_high : float;
}

let estimate ~failures ~trials = Mc.Stats.estimate ~failures ~trials ()

(* One memory trial: [noise_sample] draws a fresh Pauli error from the
   supplied stream each round; [decode] classifies the residual. *)
let memory_trial ~noise_sample ~decode ~rounds rng =
  let cls = ref L_i in
  for _ = 1 to rounds do
    match decode (noise_sample rng) with
    | Some c -> cls := compose !cls c
    | None -> cls := compose !cls L_y (* undecodable: count as failed *)
  done;
  !cls <> L_i

let run_memory ~noise_sample ~decode ~rounds ~trials rng =
  let failures = ref 0 in
  for _ = 1 to trials do
    if memory_trial ~noise_sample ~decode ~rounds rng then incr failures
  done;
  estimate ~failures:!failures ~trials

let run_memory_mc ?domains ?obs ~noise_sample ~decode ~rounds ~trials ~seed ()
    =
  Mc.Runner.estimate ?domains ?obs ~trials ~seed
    (Mc.Runner.scalar (fun rng _ ->
         memory_trial ~noise_sample ~decode ~rounds rng))

let memory_failure ~level ~eps ~rounds ~trials rng =
  let n = int_of_float (7.0 ** float_of_int level) in
  run_memory
    ~noise_sample:(fun rng -> depolarize rng ~eps ~n)
    ~decode:(fun e -> Some (concatenated_steane_class ~level e))
    ~rounds ~trials rng

let memory_failure_mc ?domains ?obs ~level ~eps ~rounds ~trials ~seed () =
  let n = int_of_float (7.0 ** float_of_int level) in
  run_memory_mc ?domains ?obs
    ~noise_sample:(fun rng -> depolarize rng ~eps ~n)
    ~decode:(fun e -> Some (concatenated_steane_class ~level e))
    ~rounds ~trials ~seed ()

let code_memory_failure code decoder ~eps ~rounds ~trials rng =
  run_memory
    ~noise_sample:(fun rng -> depolarize rng ~eps ~n:code.Code.n)
    ~decode:(fun e -> residual_class code decoder e)
    ~rounds ~trials rng

let code_memory_failure_mc ?domains ?obs code decoder ~eps ~rounds ~trials
    ~seed () =
  run_memory_mc ?domains ?obs
    ~noise_sample:(fun rng -> depolarize rng ~eps ~n:code.Code.n)
    ~decode:(fun e -> residual_class code decoder e)
    ~rounds ~trials ~seed ()

let memory_failure_biased ~level ~eps ~eta ~rounds ~trials rng =
  let n = int_of_float (7.0 ** float_of_int level) in
  run_memory
    ~noise_sample:(fun rng -> biased_depolarize rng ~eps ~eta ~n)
    ~decode:(fun e -> Some (concatenated_steane_class ~level e))
    ~rounds ~trials rng

let memory_failure_biased_mc ?domains ?obs ~level ~eps ~eta ~rounds ~trials
    ~seed () =
  let n = int_of_float (7.0 ** float_of_int level) in
  run_memory_mc ?domains ?obs
    ~noise_sample:(fun rng -> biased_depolarize rng ~eps ~eta ~n)
    ~decode:(fun e -> Some (concatenated_steane_class ~level e))
    ~rounds ~trials ~seed ()

(* ------------------------------------------------------------------ *)
(* Bit-sliced batch engine: 64 shots per int64 word.                   *)

module Plane = Frame.Plane
module Sampler = Frame.Sampler
module Program = Frame.Program

type engine = [ `Batch | `Scalar ]

(* Word-wise Steane classifier.  For syndrome s with tabulated
   correction c_s and error e, the residual's logical-X indicator is
     has_x(c_s · e) = ⟨c_s, Lz⟩ ⊕ ⟨e, Lz⟩
   by bilinearity of the symplectic product (likewise has_z against
   Lx), so the class is an XOR of an error parity with a pure function
   of the 6 syndrome bits — everything word-wise.  The tables are
   derived from the actual CSS decoder, so the batch classifier agrees
   with {!steane_class} on every error by construction. *)
type steane_tables = {
  checks : Program.check array; (* the 6 stabilizer parity selectors *)
  lz : Program.check;           (* selector for ⟨e, Lz⟩ *)
  lx : Program.check;           (* selector for ⟨e, Lx⟩ *)
  ax : bool array;              (* ax.(s) = ⟨c_s, Lz⟩ *)
  az : bool array;              (* az.(s) = ⟨c_s, Lx⟩ *)
}

let steane_tables =
  lazy
    (let code = Steane.code in
     let dec = Lazy.force steane_decoder in
     let checks = Array.map Program.check_of_generator code.Code.generators in
     let lzp = code.Code.logical_z.(0) and lxp = code.Code.logical_x.(0) in
     let ax = Array.make 64 false and az = Array.make 64 false in
     for s = 0 to 63 do
       let sv = Bitvec.create 6 in
       for i = 0 to 5 do
         if (s lsr i) land 1 = 1 then Bitvec.set sv i true
       done;
       match Code.decode dec sv with
       | None -> assert false (* the CSS table covers all 64 syndromes *)
       | Some c ->
         ax.(s) <- not (Pauli.commutes c lzp);
         az.(s) <- not (Pauli.commutes c lxp)
     done;
     {
       checks;
       lz = Program.check_of_generator lzp;
       lx = Program.check_of_generator lxp;
       ax;
       az;
     })

let parity_sel (x : int64 array) (z : int64 array) off (c : Program.check) =
  let acc = ref 0L in
  Array.iter (fun q -> acc := Int64.logxor !acc x.(off + q)) c.Program.x_sel;
  Array.iter (fun q -> acc := Int64.logxor !acc z.(off + q)) c.Program.z_sel;
  !acc

(* One 7-qubit block at word offset [off]: (has_x, has_z) words of the
   post-correction residual for all 64 shots.  The 64 syndrome
   minterms are disjoint, so the decoder contribution is an OR-mux. *)
let classify_block tbl x z off =
  let synd = Array.map (parity_sel x z off) tbl.checks in
  let px = parity_sel x z off tbl.lz
  and pz = parity_sel x z off tbl.lx in
  let muxx = ref 0L and muxz = ref 0L in
  for s = 0 to 63 do
    if tbl.ax.(s) || tbl.az.(s) then begin
      let m = ref (-1L) in
      for i = 0 to 5 do
        m :=
          Int64.logand !m
            (if (s lsr i) land 1 = 1 then synd.(i) else Int64.lognot synd.(i))
      done;
      if tbl.ax.(s) then muxx := Int64.logor !muxx !m;
      if tbl.az.(s) then muxz := Int64.logor !muxz !m
    end
  done;
  (Int64.logxor px !muxx, Int64.logxor pz !muxz)

let rec pow7 = function 0 -> 1 | l -> 7 * pow7 (l - 1)

(* Hierarchical decode, all 64 shots at once: each inner block's
   (has_x, has_z) words become one outer qubit's plane words. *)
let rec classify_words tbl ~level x z off =
  if level = 1 then classify_block tbl x z off
  else begin
    let sub = pow7 (level - 1) in
    let bx = Array.make 7 0L and bz = Array.make 7 0L in
    for b = 0 to 6 do
      let hx, hz = classify_words tbl ~level:(level - 1) x z (off + (b * sub)) in
      bx.(b) <- hx;
      bz.(b) <- hz
    done;
    classify_block tbl bx bz 0
  end

let run_memory_batch ?domains ?obs ?(engine = `Batch) ?(tile_width = 64)
    ~level ~px ~py ~pz ~rounds ~trials ~seed () =
  if level < 1 then invalid_arg "Pauli_frame: level >= 1";
  if tile_width < 64 || tile_width mod 64 <> 0 then
    invalid_arg "Pauli_frame: tile_width must be a positive multiple of 64";
  let lanes = tile_width / 64 in
  let n = pow7 level in
  let tbl = Lazy.force steane_tables in
  let qubits = Array.init n Fun.id in
  let prog = Program.make ~n [ Program.Depolarize { qubits; px; py; pz } ] in
  let batch (plane, xs, zs, fail) keys ~base:_ ~count =
    let sampler = Sampler.create_tile keys in
    (match engine with
    | `Batch ->
      Array.fill fail 0 (2 * lanes) 0L;
      (* fail.(j) accumulates has_x, fail.(lanes + j) has_z *)
      for _ = 1 to rounds do
        Plane.clear plane;
        Program.run_into prog sampler plane [||];
        for j = 0 to lanes - 1 do
          for q = 0 to n - 1 do
            xs.(q) <- Plane.get_x ~lane:j plane q;
            zs.(q) <- Plane.get_z ~lane:j plane q
          done;
          let hx, hz = classify_words tbl ~level xs zs 0 in
          fail.(j) <- Int64.logxor fail.(j) hx;
          fail.(lanes + j) <- Int64.logxor fail.(lanes + j) hz
        done
      done;
      Array.init lanes (fun j -> Int64.logor fail.(j) fail.(lanes + j))
    | `Scalar ->
      (* Cross-check engine: the identical sampler call sequence (so
         the identical noise), but each shot is extracted and run
         through the existing scalar classifier.  Counts are
         bit-identical to [`Batch] by construction. *)
      let cls = Array.make tile_width L_i in
      for _ = 1 to rounds do
        Plane.clear plane;
        Program.run_into prog sampler plane [||];
        for k = 0 to count - 1 do
          let e = Plane.extract_shot plane k in
          cls.(k) <- compose cls.(k) (concatenated_steane_class ~level e)
        done
      done;
      Array.init lanes (fun j ->
          let w = ref 0L in
          for b = 0 to 63 do
            let k = (64 * j) + b in
            if k < count && cls.(k) <> L_i then
              w := Int64.logor !w (Int64.shift_left 1L b)
          done;
          !w))
  in
  Mc.Runner.estimate ?domains ?obs
    ~engine:(Mc.Engine.batch ~tile_width ())
    ~trials ~seed
    (Mc.Runner.model
       ~worker_init:(fun () ->
         ( Plane.create ~width:tile_width n,
           Array.make n 0L,
           Array.make n 0L,
           Array.make (2 * lanes) 0L ))
       ~batch ())

let memory_failure_batch ?domains ?obs ?engine ?tile_width ~level ~eps ~rounds
    ~trials ~seed () =
  let p = eps /. 3.0 in
  run_memory_batch ?domains ?obs ?engine ?tile_width ~level ~px:p ~py:p ~pz:p
    ~rounds ~trials ~seed ()

let memory_failure_biased_batch ?domains ?obs ?engine ?tile_width ~level ~eps
    ~eta ~rounds ~trials ~seed () =
  if eta <= 0.0 then
    invalid_arg "Pauli_frame.memory_failure_biased_batch: eta > 0";
  let unit = eps /. (eta +. 2.0) in
  run_memory_batch ?domains ?obs ?engine ?tile_width ~level ~px:unit ~py:unit
    ~pz:(eta *. unit) ~rounds ~trials ~seed ()

(* Rare-event fault model over the same depolarizing memory: one fault
   location per (qubit, round), kinds X/Y/Z with total firing
   probability eps — exactly the distribution [memory_failure_mc]
   samples, so rare-vs-plain cross-validation compares identical
   models. *)
let memory_rare_model ~level ~eps ~rounds =
  if rounds < 1 then invalid_arg "Pauli_frame.memory_rare_model: rounds >= 1";
  let n = pow7 level in
  let fault_model = { Mc.Subset.locations = n * rounds; kinds = 3; p = eps } in
  let evaluate () faults =
    let cls = ref L_i in
    for r = 0 to rounds - 1 do
      let lo = r * n in
      let any = ref false in
      Array.iter
        (fun f -> if f.Mc.Subset.loc >= lo && f.loc < lo + n then any := true)
        faults;
      if !any then begin
        let x = Bitvec.create n and z = Bitvec.create n in
        Array.iter
          (fun { Mc.Subset.loc; kind } ->
            if loc >= lo && loc < lo + n then begin
              let q = loc - lo in
              match kind with
              | 0 -> Bitvec.set x q true
              | 1 ->
                Bitvec.set x q true;
                Bitvec.set z q true
              | _ -> Bitvec.set z q true
            end)
          faults;
        cls :=
          compose !cls
            (concatenated_steane_class ~level (Pauli.of_bits ~x ~z ()))
      end
    done;
    !cls <> L_i
  in
  Mc.Runner.model
    ~worker_init:(fun () -> ())
    ~rare:{ Mc.Runner.fault_model; evaluate }
    ()

let memory_failure_rare ?domains ?chunk ?obs ?campaign ?z ?config ~level ~eps
    ~rounds ~seed () =
  Mc.Runner.estimate_rare ?domains ?chunk ?obs ?campaign ?z ?config ~seed
    (memory_rare_model ~level ~eps ~rounds)
