let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let sphere_volume ~n ~t =
  let acc = ref 0 in
  let pow3 = ref 1 in
  for j = 0 to t do
    if j > 0 then pow3 := !pow3 * 3;
    acc := !acc + (binomial n j * !pow3)
  done;
  !acc

let quantum_hamming_ok ~n ~k ~t = sphere_volume ~n ~t <= 1 lsl (n - k)
let saturates_quantum_hamming ~n ~k ~t = sphere_volume ~n ~t = 1 lsl (n - k)
let quantum_singleton_ok ~n ~k ~d = n - k >= 2 * (d - 1)

let check_with ~d (code : Stabilizer_code.t) =
  let t = (d - 1) / 2 in
  ( quantum_hamming_ok ~n:code.n ~k:code.k ~t,
    saturates_quantum_hamming ~n:code.n ~k:code.k ~t,
    quantum_singleton_ok ~n:code.n ~k:code.k ~d )

let check (code : Stabilizer_code.t) =
  check_with ~d:(Stabilizer_code.distance code) code
