(* Per-gate images of the single-qubit generators X_q and Z_q under
   conjugation.  A general Pauli is conjugated by expanding it in the
   canonical order i^phi . prod_q X^{x_q} Z^{z_q} and multiplying the
   images in the same order -- conjugation preserves all commutation
   relations, so the canonical-order product of images reassembles
   exactly U.P.Udagger, sign included. *)

let single = Pauli.single

let img ~n (g : Circuit.gate) ~q ~letter =
  (* letter is X or Z; qubits untouched by the gate map to
     themselves *)
  let self () = single n q letter in
  let x_ = Pauli.X and z_ = Pauli.Z and y_ = Pauli.Y in
  match (g, letter) with
  | (H p, Pauli.X) when p = q -> single n q z_
  | (H p, Pauli.Z) when p = q -> single n q x_
  | (S p, Pauli.X) when p = q -> single n q y_
  | (Sdg p, Pauli.X) when p = q -> Pauli.neg (single n q y_)
  | ((S p | Sdg p), Pauli.Z) when p = q -> self ()
  | (X p, Pauli.Z) when p = q -> Pauli.neg (self ())
  | (X _, _) -> self ()
  | (Z p, Pauli.X) when p = q -> Pauli.neg (self ())
  | (Z _, _) -> self ()
  | (Y p, _) when p = q -> Pauli.neg (self ())
  | (Y _, _) -> self ()
  | (Cnot (c, t), Pauli.X) when q = c ->
    Pauli.mul (single n c x_) (single n t x_)
  | (Cnot (c, t), Pauli.Z) when q = t ->
    Pauli.mul (single n c z_) (single n t z_)
  | (Cnot _, _) -> self ()
  | (Cz (a, b), Pauli.X) when q = a ->
    Pauli.mul (single n a x_) (single n b z_)
  | (Cz (a, b), Pauli.X) when q = b ->
    Pauli.mul (single n a z_) (single n b x_)
  | (Cz _, _) -> self ()
  | (Swap (a, b), _) when q = a -> single n b letter
  | (Swap (a, b), _) when q = b -> single n a letter
  | (Swap _, _) -> self ()
  | ((H _ | S _ | Sdg _), _) -> self ()
  | (Toffoli _, _) -> invalid_arg "Conjugate.gate: Toffoli is not Clifford"

let gate (g : Circuit.gate) p =
  let n = Pauli.num_qubits p in
  (* phase of the canonical X^x Z^z form: letter phase plus i per Y *)
  let y_count = ref 0 in
  for q = 0 to n - 1 do
    if Pauli.letter p q = Pauli.Y then incr y_count
  done;
  let acc = ref (Pauli.identity n) in
  for q = 0 to n - 1 do
    let l = Pauli.letter p q in
    if l = Pauli.X || l = Pauli.Y then
      acc := Pauli.mul !acc (img ~n g ~q ~letter:Pauli.X);
    if l = Pauli.Z || l = Pauli.Y then
      acc := Pauli.mul !acc (img ~n g ~q ~letter:Pauli.Z)
  done;
  Pauli.mul_phase !acc ((Pauli.phase p + !y_count) mod 4)

let circuit c p =
  List.fold_left
    (fun acc instr ->
      match instr with
      | Circuit.Gate g -> gate g acc
      | Circuit.Tick -> acc
      | Circuit.Measure _ | Circuit.Measure_x _ | Circuit.Reset _
      | Circuit.Cond _ | Circuit.Cond_parity _ ->
        invalid_arg "Conjugate.circuit: unitary circuits only")
    p (Circuit.instrs c)

let random_clifford_circuit rng ~n ~gates =
  let c = ref (Circuit.create ~num_qubits:n ()) in
  for _ = 1 to gates do
    let g : Circuit.gate =
      match Random.State.int rng 3 with
      | 0 -> H (Random.State.int rng n)
      | 1 -> S (Random.State.int rng n)
      | _ ->
        let a = Random.State.int rng n in
        let b = (a + 1 + Random.State.int rng (n - 1)) mod n in
        Cnot (a, b)
    in
    c := Circuit.add_gate !c g
  done;
  !c
