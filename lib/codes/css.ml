module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

let x_string support =
  Pauli.of_bits ~x:support ~z:(Bitvec.create (Bitvec.length support)) ()

let z_string support =
  Pauli.of_bits ~x:(Bitvec.create (Bitvec.length support)) ~z:support ()

(* Coset representatives of ker(checks) modulo rowspace(gens):
   independent kernel vectors not in the row space, greedily chosen so
   that together with the row space they stay independent. *)
let coset_representatives ~kernel_of ~modulo =
  let reps = ref [] in
  let current () =
    match !reps with
    | [] -> modulo
    | rs -> Mat.stack modulo (Mat.of_rows rs)
  in
  List.iter
    (fun v ->
      let m = current () in
      if Mat.rank (Mat.stack m (Mat.of_rows [ v ])) > Mat.rank m then
        reps := v :: !reps)
    kernel_of;
  List.rev !reps

let make ~name ~hx ~hz =
  if Mat.cols hx <> Mat.cols hz then invalid_arg "Css.make: width mismatch";
  let n = Mat.cols hx in
  (* orthogonality: every X row commutes with every Z row *)
  for i = 0 to Mat.rows hx - 1 do
    for j = 0 to Mat.rows hz - 1 do
      if Bitvec.dot (Mat.row hx i) (Mat.row hz j) then
        invalid_arg "Css.make: H_X and H_Z rows not orthogonal"
    done
  done;
  let rx = Mat.rank hx and rz = Mat.rank hz in
  if rx <> Mat.rows hx || rz <> Mat.rows hz then
    invalid_arg "Css.make: dependent parity-check rows";
  let k = n - rx - rz in
  if k < 0 then invalid_arg "Css.make: negative k";
  let z_reps = coset_representatives ~kernel_of:(Mat.kernel hx) ~modulo:hz in
  let x_reps = coset_representatives ~kernel_of:(Mat.kernel hz) ~modulo:hx in
  if List.length z_reps <> k || List.length x_reps <> k then
    invalid_arg "Css.make: logical count mismatch";
  (* Pair the representatives: Gram matrix G_ij = x_i · z_j must be
     invertible; replace x_i by the G⁻¹ recombination so that
     x_i · z_j = δ_ij (Eq. 29). *)
  let x_arr = Array.of_list x_reps and z_arr = Array.of_list z_reps in
  let logical_x, logical_z =
    if k = 0 then ([], [])
    else begin
      let gram =
        Mat.of_int_lists
          (List.init k (fun i ->
               List.init k (fun j ->
                   if Bitvec.dot x_arr.(i) z_arr.(j) then 1 else 0)))
      in
      match Mat.inverse gram with
      | None -> invalid_arg "Css.make: degenerate logical pairing"
      | Some ginv ->
        let new_x =
          List.init k (fun i ->
              let acc = ref (Bitvec.create n) in
              for j = 0 to k - 1 do
                if Mat.get ginv i j then Bitvec.xor_into ~src:x_arr.(j) !acc
              done;
              !acc)
        in
        (List.map x_string new_x, List.map z_string (Array.to_list z_arr))
    end
  in
  let generators =
    List.init (Mat.rows hz) (fun i -> z_string (Mat.row hz i))
    @ List.init (Mat.rows hx) (fun i -> x_string (Mat.row hx i))
  in
  Stabilizer_code.make ~name ~generators ~logical_x ~logical_z

(* All supports of weight ≤ w on n bits, paired with their syndrome
   under [checks]; first (lowest-weight) entry per syndrome wins. *)
let classical_side_table checks n w =
  let table = Hashtbl.create 64 in
  let add support =
    let key = Bitvec.to_string (Mat.mul_vec checks support) in
    if not (Hashtbl.mem table key) then Hashtbl.add table key support
  in
  add (Bitvec.create n);
  (* enumerate strictly by increasing weight so tabulated corrections
     are globally minimum weight *)
  let rec enum_weight support need start =
    if need = 0 then add support
    else
      for i = start to n - 1 do
        let s = Bitvec.copy support in
        Bitvec.set s i true;
        enum_weight s (need - 1) (i + 1)
      done
  in
  for weight = 1 to w do
    enum_weight (Bitvec.create n) weight 0
  done;
  table

let classical_decoder ~checks ~n ~max_weight =
  let table = classical_side_table checks n max_weight in
  fun syndrome -> Hashtbl.find_opt table (Bitvec.to_string syndrome)

let superposition_circuit basis =
  let n = Mat.cols basis in
  let rref, pivots = Mat.rref basis in
  if List.length pivots <> Mat.rows basis then
    invalid_arg "Css.superposition_circuit: dependent basis rows";
  let c = ref (Circuit.create ~num_qubits:n ()) in
  List.iteri
    (fun i pivot ->
      c := Circuit.add_gate !c (Circuit.H pivot);
      Bitvec.iteri
        (fun q bit ->
          if bit && q <> pivot then
            c := Circuit.add_gate !c (Circuit.Cnot (pivot, q)))
        (Mat.row rref i))
    pivots;
  !c

let css_decoder ?(max_weight_per_side = 1) ~hx ~hz ~n () =
  let bit_table = classical_side_table hz n max_weight_per_side in
  let phase_table = classical_side_table hx n max_weight_per_side in
  let nz = Mat.rows hz in
  let nx = Mat.rows hx in
  Stabilizer_code.decoder_of_fn ~n (fun s ->
      if Bitvec.length s <> nz + nx then None
      else begin
        let key_bit = Bitvec.to_string (Bitvec.sub s ~pos:0 ~len:nz) in
        let key_phase = Bitvec.to_string (Bitvec.sub s ~pos:nz ~len:nx) in
        match
          ( Hashtbl.find_opt bit_table key_bit,
            Hashtbl.find_opt phase_table key_phase )
        with
        | Some e_bit, Some e_phase ->
          Some (Pauli.mul (x_string e_bit) (z_string e_phase))
        | _ -> None
      end)

let steane_from_hamming () =
  make ~name:"steane_css" ~hx:Hamming.parity_check ~hz:Hamming.parity_check
