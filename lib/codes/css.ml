module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

type error =
  | Width_mismatch of { x_cols : int; z_cols : int }
  | Non_orthogonal of { x_row : int; z_row : int }
  | Dependent_rows of [ `X | `Z ]
  | Negative_k of { n : int; rank_x : int; rank_z : int }
  | Degenerate_pairing

let error_to_string = function
  | Width_mismatch { x_cols; z_cols } ->
    Printf.sprintf "H_X has %d columns but H_Z has %d" x_cols z_cols
  | Non_orthogonal { x_row; z_row } ->
    Printf.sprintf "H_X row %d and H_Z row %d are not orthogonal" x_row z_row
  | Dependent_rows side ->
    Printf.sprintf "dependent parity-check rows in H_%s"
      (match side with `X -> "X" | `Z -> "Z")
  | Negative_k { n; rank_x; rank_z } ->
    Printf.sprintf "negative k: n = %d, rank H_X = %d, rank H_Z = %d" n rank_x
      rank_z
  | Degenerate_pairing -> "degenerate logical pairing"

exception Invalid_css of { name : string; error : error }

let () =
  Printexc.register_printer (function
    | Invalid_css { name; error } ->
      Some (Printf.sprintf "Css.make %S: %s" name (error_to_string error))
    | _ -> None)

let x_string support =
  Pauli.of_bits ~x:support ~z:(Bitvec.create (Bitvec.length support)) ()

let z_string support =
  Pauli.of_bits ~x:(Bitvec.create (Bitvec.length support)) ~z:support ()

(* Coset representatives of ker(checks) modulo rowspace(gens):
   independent kernel vectors not in the row space, greedily chosen so
   that together with the row space they stay independent. *)
let coset_representatives ~kernel_of ~modulo =
  let reps = ref [] in
  let current () =
    match !reps with
    | [] -> modulo
    | rs -> Mat.stack modulo (Mat.of_rows rs)
  in
  List.iter
    (fun v ->
      let m = current () in
      if Mat.rank (Mat.stack m (Mat.of_rows [ v ])) > Mat.rank m then
        reps := v :: !reps)
    kernel_of;
  List.rev !reps

let build ~name ~hx ~hz =
  let ( let* ) = Result.bind in
  let* () =
    if Mat.cols hx <> Mat.cols hz then
      Error (Width_mismatch { x_cols = Mat.cols hx; z_cols = Mat.cols hz })
    else Ok ()
  in
  let n = Mat.cols hx in
  (* orthogonality: every X row commutes with every Z row *)
  let* () =
    let bad = ref None in
    for i = 0 to Mat.rows hx - 1 do
      for j = 0 to Mat.rows hz - 1 do
        if !bad = None && Bitvec.dot (Mat.row hx i) (Mat.row hz j) then
          bad := Some (Non_orthogonal { x_row = i; z_row = j })
      done
    done;
    match !bad with Some e -> Error e | None -> Ok ()
  in
  let rx = Mat.rank hx and rz = Mat.rank hz in
  let* () = if rx <> Mat.rows hx then Error (Dependent_rows `X) else Ok () in
  let* () = if rz <> Mat.rows hz then Error (Dependent_rows `Z) else Ok () in
  let k = n - rx - rz in
  let* () =
    if k < 0 then Error (Negative_k { n; rank_x = rx; rank_z = rz }) else Ok ()
  in
  let z_reps = coset_representatives ~kernel_of:(Mat.kernel hx) ~modulo:hz in
  let x_reps = coset_representatives ~kernel_of:(Mat.kernel hz) ~modulo:hx in
  (* dim ker H_X − rank H_Z = n − rank H_X − rank H_Z = k always, so a
     count mismatch is unreachable once the rank checks above pass *)
  assert (List.length z_reps = k && List.length x_reps = k);
  (* Pair the representatives: Gram matrix G_ij = x_i · z_j must be
     invertible; replace x_i by the G⁻¹ recombination so that
     x_i · z_j = δ_ij (Eq. 29). *)
  let x_arr = Array.of_list x_reps and z_arr = Array.of_list z_reps in
  let* logical_x, logical_z =
    if k = 0 then Ok ([], [])
    else begin
      let gram =
        Mat.of_int_lists
          (List.init k (fun i ->
               List.init k (fun j ->
                   if Bitvec.dot x_arr.(i) z_arr.(j) then 1 else 0)))
      in
      match Mat.inverse gram with
      | None -> Error Degenerate_pairing
      | Some ginv ->
        let new_x =
          List.init k (fun i ->
              let acc = ref (Bitvec.create n) in
              for j = 0 to k - 1 do
                if Mat.get ginv i j then Bitvec.xor_into ~src:x_arr.(j) !acc
              done;
              !acc)
        in
        Ok (List.map x_string new_x, List.map z_string (Array.to_list z_arr))
    end
  in
  let generators =
    List.init (Mat.rows hz) (fun i -> z_string (Mat.row hz i))
    @ List.init (Mat.rows hx) (fun i -> x_string (Mat.row hx i))
  in
  Ok (Stabilizer_code.make ~name ~generators ~logical_x ~logical_z)

let make ~name ~hx ~hz =
  match build ~name ~hx ~hz with
  | Ok code -> code
  | Error error -> raise (Invalid_css { name; error })

(* All supports of weight ≤ w on n bits, paired with their syndrome
   under [checks]; first (lowest-weight) entry per syndrome wins. *)
let classical_side_table checks n w =
  let table = Hashtbl.create 64 in
  let add support =
    let key = Bitvec.to_string (Mat.mul_vec checks support) in
    if not (Hashtbl.mem table key) then Hashtbl.add table key support
  in
  add (Bitvec.create n);
  (* enumerate strictly by increasing weight so tabulated corrections
     are globally minimum weight *)
  let rec enum_weight support need start =
    if need = 0 then add support
    else
      for i = start to n - 1 do
        let s = Bitvec.copy support in
        Bitvec.set s i true;
        enum_weight s (need - 1) (i + 1)
      done
  in
  for weight = 1 to w do
    enum_weight (Bitvec.create n) weight 0
  done;
  table

let classical_decoder ~checks ~n ~max_weight =
  let table = classical_side_table checks n max_weight in
  fun syndrome -> Hashtbl.find_opt table (Bitvec.to_string syndrome)

let side_table_entries ~checks ~n ~max_weight =
  let table = classical_side_table checks n max_weight in
  Hashtbl.fold
    (fun key support acc -> (key, Bitvec.to_string support) :: acc)
    table []
  |> List.sort compare

let superposition_circuit basis =
  let n = Mat.cols basis in
  let rref, pivots = Mat.rref basis in
  if List.length pivots <> Mat.rows basis then
    invalid_arg "Css.superposition_circuit: dependent basis rows";
  let c = ref (Circuit.create ~num_qubits:n ()) in
  List.iteri
    (fun i pivot ->
      c := Circuit.add_gate !c (Circuit.H pivot);
      Bitvec.iteri
        (fun q bit ->
          if bit && q <> pivot then
            c := Circuit.add_gate !c (Circuit.Cnot (pivot, q)))
        (Mat.row rref i))
    pivots;
  !c

let css_decoder ?(max_weight_per_side = 1) ~hx ~hz ~n () =
  let bit_table = classical_side_table hz n max_weight_per_side in
  let phase_table = classical_side_table hx n max_weight_per_side in
  let nz = Mat.rows hz in
  let nx = Mat.rows hx in
  Stabilizer_code.decoder_of_fn ~n (fun s ->
      if Bitvec.length s <> nz + nx then None
      else begin
        let key_bit = Bitvec.to_string (Bitvec.sub s ~pos:0 ~len:nz) in
        let key_phase = Bitvec.to_string (Bitvec.sub s ~pos:nz ~len:nx) in
        match
          ( Hashtbl.find_opt bit_table key_bit,
            Hashtbl.find_opt phase_table key_phase )
        with
        | Some e_bit, Some e_phase ->
          Some (Pauli.mul (x_string e_bit) (z_string e_phase))
        | _ -> None
      end)

let steane_from_hamming () =
  make ~name:"steane_css" ~hx:Hamming.parity_check ~hz:Hamming.parity_check
