let p = Pauli.of_string

let code =
  Stabilizer_code.make ~name:"shor9"
    ~generators:
      [ p "ZZIIIIIII";
        p "IZZIIIIII";
        p "IIIZZIIII";
        p "IIIIZZIII";
        p "IIIIIIZZI";
        p "IIIIIIIZZ";
        p "XXXXXXIII";
        p "IIIXXXXXX" ]
    ~logical_x:[ p "ZZZZZZZZZ" ] ~logical_z:[ p "XXXXXXXXX" ]

let input_qubit = 0

let hz =
  Gf2.Mat.of_int_lists
    [ [ 1; 1; 0; 0; 0; 0; 0; 0; 0 ];
      [ 0; 1; 1; 0; 0; 0; 0; 0; 0 ];
      [ 0; 0; 0; 1; 1; 0; 0; 0; 0 ];
      [ 0; 0; 0; 0; 1; 1; 0; 0; 0 ];
      [ 0; 0; 0; 0; 0; 0; 1; 1; 0 ];
      [ 0; 0; 0; 0; 0; 0; 0; 1; 1 ] ]

let hx =
  Gf2.Mat.of_int_lists
    [ [ 1; 1; 1; 1; 1; 1; 0; 0; 0 ]; [ 0; 0; 0; 1; 1; 1; 1; 1; 1 ] ]

let encoding_circuit () =
  let open Circuit in
  let c = create ~num_qubits:9 () in
  (* phase-flip repetition across the three triples... *)
  let c = add_gate c (Cnot (0, 3)) in
  let c = add_gate c (Cnot (0, 6)) in
  let c = add_gate c (H 0) in
  let c = add_gate c (H 3) in
  let c = add_gate c (H 6) in
  (* ...then bit-flip repetition within each triple *)
  let c = add_gate c (Cnot (0, 1)) in
  let c = add_gate c (Cnot (0, 2)) in
  let c = add_gate c (Cnot (3, 4)) in
  let c = add_gate c (Cnot (3, 5)) in
  let c = add_gate c (Cnot (6, 7)) in
  let c = add_gate c (Cnot (6, 8)) in
  c
