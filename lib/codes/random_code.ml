let counter = ref 0

let generate_with_circuit rng ~n ~k ~gates =
  if k < 0 || k >= n then invalid_arg "Random_code.generate";
  let c = Conjugate.random_clifford_circuit rng ~n ~gates in
  (* normalize signs to the library's +1 convention (flipping a
     generator's sign yields an equally valid code with the same
     parameters) *)
  let conj p =
    let q = Conjugate.circuit c p in
    if Pauli.phase q = 2 then Pauli.neg q else q
  in
  let generators =
    List.init (n - k) (fun i -> conj (Pauli.single n i Pauli.Z))
  in
  let logical_z =
    List.init k (fun j -> conj (Pauli.single n (n - k + j) Pauli.Z))
  in
  let logical_x =
    List.init k (fun j -> conj (Pauli.single n (n - k + j) Pauli.X))
  in
  incr counter;
  let code =
    Stabilizer_code.make
      ~name:(Printf.sprintf "random_%d_%d_#%d" n k !counter)
      ~generators ~logical_x ~logical_z
  in
  (code, c)

let generate rng ~n ~k ~gates = fst (generate_with_circuit rng ~n ~k ~gates)
