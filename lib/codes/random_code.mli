(** Random stabilizer codes, by conjugating the trivial code through a
    random Clifford circuit — the generator behind the library's
    strongest property tests: anything that must hold for *every*
    stabilizer code gets checked on a stream of arbitrary ones. *)

(** [generate rng ~n ~k ~gates] — a valid [[n,k]] code: generators
    Z₁…Z_{n−k} and logicals Z/X on the last k qubits, all conjugated
    by a [gates]-long random Clifford circuit.  Passes
    {!Stabilizer_code.make} validation by construction. *)
val generate : Random.State.t -> n:int -> k:int -> gates:int -> Stabilizer_code.t

(** [generate_with_circuit rng ~n ~k ~gates] — also return the
    conjugating circuit (its inverse is a decoding circuit for the
    code). *)
val generate_with_circuit :
  Random.State.t -> n:int -> k:int -> gates:int -> Stabilizer_code.t * Circuit.t
