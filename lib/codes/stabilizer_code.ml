module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

type t = {
  name : string;
  n : int;
  k : int;
  generators : Pauli.t array;
  logical_x : Pauli.t array;
  logical_z : Pauli.t array;
}

let fail fmt = Format.kasprintf invalid_arg fmt

let symplectic_row p = Bitvec.append (Pauli.x_bits p) (Pauli.z_bits p)

let make ~name ~generators ~logical_x ~logical_z =
  (match generators with
  | [] -> fail "%s: no generators" name
  | g :: _ ->
    let n = Pauli.num_qubits g in
    List.iteri
      (fun i p ->
        if Pauli.num_qubits p <> n then fail "%s: generator %d size" name i)
      generators);
  let n = Pauli.num_qubits (List.hd generators) in
  let k = List.length logical_x in
  if List.length logical_z <> k then fail "%s: |X̄| <> |Z̄|" name;
  if List.length generators <> n - k then
    fail "%s: expected %d generators, got %d" name (n - k)
      (List.length generators);
  let all = generators @ logical_x @ logical_z in
  List.iter
    (fun p ->
      match Pauli.phase p with
      | 0 | 2 -> ()
      | _ -> fail "%s: non-Hermitian operator %s" name (Pauli.to_string p))
    all;
  (* generators mutually commute *)
  List.iteri
    (fun i gi ->
      List.iteri
        (fun j gj ->
          if i < j && not (Pauli.commutes gi gj) then
            fail "%s: generators %d and %d anticommute" name i j)
        generators)
    generators;
  (* independence: symplectic rows have full rank *)
  let m = Mat.of_rows (List.map symplectic_row generators) in
  if Mat.rank m <> n - k then fail "%s: generators not independent" name;
  (* logicals commute with every generator *)
  let check_logical tag idx p =
    List.iteri
      (fun j g ->
        if not (Pauli.commutes p g) then
          fail "%s: %s%d anticommutes with generator %d" name tag idx j)
      generators
  in
  List.iteri (check_logical "X̄") logical_x;
  List.iteri (check_logical "Z̄") logical_z;
  (* Eq. (29) pairings *)
  let lx = Array.of_list logical_x and lz = Array.of_list logical_z in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if not (Pauli.commutes lx.(i) lx.(j)) then
        fail "%s: X̄%d, X̄%d anticommute" name i j;
      if not (Pauli.commutes lz.(i) lz.(j)) then
        fail "%s: Z̄%d, Z̄%d anticommute" name i j;
      let comm = Pauli.commutes lx.(i) lz.(j) in
      if i = j && comm then fail "%s: X̄%d must anticommute with Z̄%d" name i i;
      if i <> j && not comm then fail "%s: X̄%d, Z̄%d anticommute" name i j
    done
  done;
  { name; n; k; generators = Array.of_list generators; logical_x = lx; logical_z = lz }

let syndrome code e =
  if Pauli.num_qubits e <> code.n then fail "%s: syndrome size" code.name;
  let s = Bitvec.create (Array.length code.generators) in
  Array.iteri
    (fun i g -> if not (Pauli.commutes e g) then Bitvec.set s i true)
    code.generators;
  s

let stabilizer_row_space code =
  Mat.of_rows (Array.to_list (Array.map symplectic_row code.generators))

let classify code p =
  if not (Bitvec.is_zero (syndrome code p)) then `Detectable
  else if Pauli.weight p = 0 then `Stabilizer
  else if Mat.in_row_space (stabilizer_row_space code) (symplectic_row p) then
    `Stabilizer
  else `Logical

(* Enumerate all Paulis of exact weight w on n qubits. *)
let iter_paulis_of_weight n w f =
  let letters = [| Pauli.X; Pauli.Y; Pauli.Z |] in
  let positions = Array.make w 0 in
  let choice = Array.make w 0 in
  let rec choose_letters depth =
    if depth = w then begin
      let p = ref (Pauli.identity n) in
      for i = 0 to w - 1 do
        p := Pauli.mul !p (Pauli.single n positions.(i) letters.(choice.(i)))
      done;
      f !p
    end
    else
      for l = 0 to 2 do
        choice.(depth) <- l;
        choose_letters (depth + 1)
      done
  in
  let rec choose_positions idx start =
    if idx = w then choose_letters 0
    else
      for q = start to n - 1 do
        positions.(idx) <- q;
        choose_positions (idx + 1) (q + 1)
      done
  in
  if w = 0 then f (Pauli.identity n) else choose_positions 0 0

exception Found of int

let distance code =
  try
    for w = 1 to code.n do
      iter_paulis_of_weight code.n w (fun p ->
          match classify code p with
          | `Logical -> raise (Found w)
          | `Stabilizer | `Detectable -> ())
    done;
    fail "%s: no logical operator found (not a k>0 code?)" code.name
  with Found w -> w

type decoder = { code_n : int; decode_fn : Bitvec.t -> Pauli.t option }

let decoder_of_fn ~n decode_fn = { code_n = n; decode_fn }

let decoder_of_table n table =
  decoder_of_fn ~n (fun s -> Hashtbl.find_opt table (Bitvec.to_string s))

let lookup_decoder ?(max_weight = 2) code =
  let table = Hashtbl.create 256 in
  for w = 0 to max_weight do
    iter_paulis_of_weight code.n w (fun p ->
        let key = Bitvec.to_string (syndrome code p) in
        if not (Hashtbl.mem table key) then Hashtbl.add table key p)
  done;
  decoder_of_table code.n table

let decoder_of_alist entries =
  match entries with
  | [] -> invalid_arg "decoder_of_alist: empty"
  | (_, p) :: _ ->
    let table = Hashtbl.create (List.length entries) in
    List.iter
      (fun (key, correction) ->
        if not (Hashtbl.mem table key) then Hashtbl.add table key correction)
      entries;
    decoder_of_table (Pauli.num_qubits p) table

let decode d s = d.decode_fn s

let correct d code e =
  match decode d (syndrome code e) with
  | None -> `Unhandled
  | Some c -> (
    let residual = Pauli.mul c e in
    match classify code residual with
    | `Stabilizer -> `Ok
    | `Logical -> `Logical_error
    | `Detectable ->
      (* impossible: c and e share a syndrome *)
      assert false)

(* Solve for fix-up Paulis D_i that anticommute with ops.(i) and
   commute with every other listed operator: applying D_i flips only
   the i-th eigenvalue, so a deterministic −1 after the earlier
   projections can always be repaired. *)
let fixups_for code ops =
  let n = code.n in
  let constraint_matrix =
    Mat.of_rows
      (Array.to_list
         (Array.map
            (fun op -> Bitvec.append (Pauli.z_bits op) (Pauli.x_bits op))
            ops))
  in
  Array.init (Array.length ops) (fun i ->
      let rhs = Bitvec.create (Array.length ops) in
      Bitvec.set rhs i true;
      match Mat.solve constraint_matrix rhs with
      | Some v ->
        Pauli.of_bits
          ~x:(Bitvec.sub v ~pos:0 ~len:n)
          ~z:(Bitvec.sub v ~pos:n ~len:n)
          ()
      | None -> fail "%s: no fix-up operator (dependent set?)" code.name)

let prepare_eigenstate code ops =
  let tab = Tableau.create code.n in
  let fixups = lazy (fixups_for code ops) in
  Array.iteri
    (fun i p ->
      if not (Tableau.postselect_pauli tab p ~outcome:false) then begin
        (* deterministic −1: flip it with the i-th fix-up *)
        Tableau.apply_pauli tab (Lazy.force fixups).(i);
        if not (Tableau.postselect_pauli tab p ~outcome:false) then
          fail "%s: cannot project onto +1 eigenspace of %s" code.name
            (Pauli.to_string p)
      end)
    ops;
  tab

let prepare_logical_zero code =
  prepare_eigenstate code (Array.append code.generators code.logical_z)

let prepare_logical_plus code =
  prepare_eigenstate code (Array.append code.generators code.logical_x)

let encoding_circuit_via_measurement code =
  let n = code.n in
  if code.k = 0 then fail "%s: nothing to encode" code.name;
  let ops = Array.append code.generators code.logical_z in
  Array.iter
    (fun op ->
      if Pauli.phase op <> 0 then
        fail "%s: encoding needs +1-phase operators" code.name)
    ops;
  (* Fix-up Paulis: D_i anticommutes with ops_i and commutes with
     every other measured operator.  With variables v = (x_D | z_D),
     the symplectic constraint ⟨op_j, D⟩ = δ_ij reads
     (z_j | x_j) · v = δ_ij — a full-rank linear system because the
     measured operators are independent. *)
  let constraint_matrix =
    Mat.of_rows
      (Array.to_list
         (Array.map
            (fun op -> Bitvec.append (Pauli.z_bits op) (Pauli.x_bits op))
            ops))
  in
  let fixups =
    Array.init (Array.length ops) (fun i ->
        let rhs = Bitvec.create (Array.length ops) in
        Bitvec.set rhs i true;
        match Mat.solve constraint_matrix rhs with
        | Some v ->
          Pauli.of_bits
            ~x:(Bitvec.sub v ~pos:0 ~len:n)
            ~z:(Bitvec.sub v ~pos:n ~len:n)
            ()
        | None -> fail "%s: no fix-up operator (dependent set?)" code.name)
  in
  let anc = n in
  let c = ref (Circuit.create ~num_cbits:(Array.length ops) ~num_qubits:(n + 1) ()) in
  let add i = c := Circuit.add !c i in
  Array.iteri
    (fun i op ->
      add (Circuit.Gate (Circuit.H anc));
      for q = 0 to n - 1 do
        match Pauli.letter op q with
        | Pauli.I -> ()
        | Pauli.X -> add (Circuit.Gate (Circuit.Cnot (anc, q)))
        | Pauli.Z -> add (Circuit.Gate (Circuit.Cz (anc, q)))
        | Pauli.Y ->
          (* controlled-Y = S_q · CNOT · S†_q *)
          add (Circuit.Gate (Circuit.Sdg q));
          add (Circuit.Gate (Circuit.Cnot (anc, q)));
          add (Circuit.Gate (Circuit.S q))
      done;
      add (Circuit.Gate (Circuit.H anc));
      add (Circuit.Measure { qubit = anc; cbit = i });
      add (Circuit.Reset anc))
    ops;
  Array.iteri
    (fun i d ->
      for q = 0 to n - 1 do
        match Pauli.letter d q with
        | Pauli.I -> ()
        | Pauli.X -> add (Circuit.Cond { cbit = i; gate = Circuit.X q })
        | Pauli.Y -> add (Circuit.Cond { cbit = i; gate = Circuit.Y q })
        | Pauli.Z -> add (Circuit.Cond { cbit = i; gate = Circuit.Z q })
      done)
    fixups;
  !c

let default_decoders : (string, decoder) Hashtbl.t = Hashtbl.create 8

let register_default_decoder code d =
  Hashtbl.replace default_decoders code.name d

let default_decoder code =
  match Hashtbl.find_opt default_decoders code.name with
  | Some d -> d
  | None ->
    let d = lookup_decoder code in
    Hashtbl.add default_decoders code.name d;
    d

let ideal_recover ?decoder code tab rng =
  let d = match decoder with Some d -> d | None -> default_decoder code in
  let s = Bitvec.create (Array.length code.generators) in
  Array.iteri
    (fun i g -> if Tableau.measure_pauli tab rng g then Bitvec.set s i true)
    code.generators;
  (match decode d s with
  | Some c when Pauli.weight c > 0 -> Tableau.apply_pauli tab c
  | Some _ | None -> ());
  s

let logical_measure_z code tab rng i = Tableau.measure_pauli tab rng code.logical_z.(i)

let embed code ~offset ~total p =
  if Pauli.num_qubits p <> code.n then fail "%s: embed size" code.name;
  if offset < 0 || offset + code.n > total then fail "%s: embed range" code.name;
  let q = ref (Pauli.identity total) in
  for i = 0 to code.n - 1 do
    match Pauli.letter p i with
    | Pauli.I -> ()
    | l -> q := Pauli.mul !q (Pauli.single total (offset + i) l)
  done;
  (* preserve the ±1 phase *)
  if Pauli.phase p = 2 then Pauli.neg !q else !q

let pp fmt code =
  Format.fprintf fmt "[[%d,%d]] %s@." code.n code.k code.name;
  Array.iteri
    (fun i g -> Format.fprintf fmt "  M%d = %s@." (i + 1) (Pauli.to_string g))
    code.generators
