module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

(* generator polynomial x¹¹ + x⁹ + x⁷ + x⁶ + x⁵ + x + 1: coefficient
   bits {0, 1, 5, 6, 7, 9, 11} *)
let generator =
  let poly = [ 0; 1; 5; 6; 7; 9; 11 ] in
  let row shift =
    let v = Bitvec.create 23 in
    List.iter (fun d -> Bitvec.set v (d + shift) true) poly;
    v
  in
  Mat.of_rows (List.init 12 row)

let parity_check = Mat.of_rows (Mat.kernel generator)

let is_codeword w =
  Bitvec.length w = 23 && Bitvec.is_zero (Mat.mul_vec parity_check w)

let codewords =
  lazy
    (List.init 4096 (fun data ->
         Mat.vec_mul (Bitvec.of_int ~width:12 data) generator))

let weight_distribution () =
  let dist = Array.make 24 0 in
  List.iter
    (fun w -> dist.(Bitvec.weight w) <- dist.(Bitvec.weight w) + 1)
    (Lazy.force codewords);
  dist

let classical_decoder =
  lazy (Css.classical_decoder ~checks:parity_check ~n:23 ~max_weight:3)

let decode w =
  if Bitvec.length w <> 23 then invalid_arg "Golay.decode";
  match (Lazy.force classical_decoder) (Mat.mul_vec parity_check w) with
  | Some support -> Bitvec.xor w support
  | None ->
    (* the Golay code is perfect: unreachable *)
    assert false

(* The dual code C⊥ = [23,11,8] is self-orthogonal (C⊥ ⊆ C), so its
   generator matrix serves as both H_X and H_Z. *)
let code = lazy (Css.make ~name:"golay23" ~hx:parity_check ~hz:parity_check)

let dual_codewords =
  lazy
    (let rows = Mat.rows parity_check in
     List.init (1 lsl rows) (fun mask ->
         Mat.vec_mul (Bitvec.of_int ~width:rows mask) parity_check))

let quantum_distance () =
  (* least weight in C \ C⊥: compare weight enumerators *)
  let dist words =
    let d = Array.make 24 0 in
    List.iter (fun w -> d.(Bitvec.weight w) <- d.(Bitvec.weight w) + 1) words;
    d
  in
  let a = dist (Lazy.force codewords) in
  let b = dist (Lazy.force dual_codewords) in
  let rec find w =
    if w > 23 then invalid_arg "Golay.quantum_distance"
    else if a.(w) > b.(w) then w
    else find (w + 1)
  in
  find 1

let css_decoder () =
  Css.css_decoder ~max_weight_per_side:3 ~hx:parity_check ~hz:parity_check
    ~n:23 ()

let code =
  let c = Lazy.force code in
  Stabilizer_code.register_default_decoder c (css_decoder ());
  c
