(** Classical weight enumerators and the MacWilliams identity
    (MacWilliams–Sloane, the paper's ref. 26 — the classical theory
    Steane's construction imports).

    The weight enumerator A of a linear code determines its dual's
    enumerator B through the MacWilliams transform
    B_j = |C|⁻¹ Σ_i A_i·K_j(i) with Krawtchouk polynomials
    K_j(i) = Σ_l (−1)^l C(i,l)·C(n−i, j−l).  For CSS codes the
    enumerators of C and C⊥ are exactly what fixes the quantum
    distance (cf. {!Golay.quantum_distance}). *)

(** [distribution basis] — the weight distribution of the row space of
    [basis] (enumerates 2^rows codewords; rows ≤ 20 enforced).
    Entry w counts codewords of Hamming weight w. *)
val distribution : Gf2.Mat.t -> int array

(** [dual_distribution basis] — the weight distribution of the dual
    code, computed *directly* from a kernel basis. *)
val dual_distribution : Gf2.Mat.t -> int array

(** [macwilliams_transform ~n dist] — the dual's distribution computed
    from [dist] by the MacWilliams identity (exact integer
    arithmetic; [n] is the code length). *)
val macwilliams_transform : n:int -> int array -> int array

(** [krawtchouk ~n ~j i] — K_j(i) over GF(2). *)
val krawtchouk : n:int -> j:int -> int -> int

(** [minimum_distance basis] — least nonzero weight in the row
    space. *)
val minimum_distance : Gf2.Mat.t -> int
