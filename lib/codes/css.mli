(** Generic CSS (Calderbank–Shor–Steane) construction (§3.6): from two
    classical parity-check matrices H_X and H_Z with
    H_X · H_Zᵀ = 0, build the stabilizer code whose X-type generators
    are the rows of H_X and whose Z-type generators are the rows of
    H_Z.  Logical operators are computed as coset representatives of
    ker H_Z / rowspace H_X (X-type) and ker H_X / rowspace H_Z
    (Z-type), paired to satisfy Eq. (29). *)

(** Structured rejection reasons for ill-formed (H_X, H_Z) pairs —
    most importantly {!Non_orthogonal}, which pinpoints the first pair
    of anticommuting generator rows. *)
type error =
  | Width_mismatch of { x_cols : int; z_cols : int }
  | Non_orthogonal of { x_row : int; z_row : int }
  | Dependent_rows of [ `X | `Z ]
  | Negative_k of { n : int; rank_x : int; rank_z : int }
  | Degenerate_pairing

val error_to_string : error -> string

exception Invalid_css of { name : string; error : error }

(** [build ~name ~hx ~hz] builds the code, or returns the structured
    reason the pair does not define a CSS code. *)
val build :
  name:string ->
  hx:Gf2.Mat.t ->
  hz:Gf2.Mat.t ->
  (Stabilizer_code.t, error) result

(** [make ~name ~hx ~hz] is {!build}, raising {!Invalid_css} on an
    ill-formed input. *)
val make : name:string -> hx:Gf2.Mat.t -> hz:Gf2.Mat.t -> Stabilizer_code.t

(** [steane_from_hamming ()] is [[7,1,3]] built from H_X = H_Z = the
    Hamming parity check — identical (as a stabilizer group) to
    {!Steane.code}; used as a consistency check. *)
val steane_from_hamming : unit -> Stabilizer_code.t

(** [x_string support] / [z_string support] build pure X/Z Pauli
    operators from a support bit vector. *)
val x_string : Gf2.Bitvec.t -> Pauli.t

val z_string : Gf2.Bitvec.t -> Pauli.t

(** [classical_decoder ~checks ~n ~max_weight] tabulates minimum-weight
    classical error supports by syndrome under the parity-check matrix
    [checks]; returns a lookup function ([None] = syndrome beyond the
    weight budget). *)
val classical_decoder :
  checks:Gf2.Mat.t ->
  n:int ->
  max_weight:int ->
  Gf2.Bitvec.t ->
  Gf2.Bitvec.t option

(** [side_table_entries ~checks ~n ~max_weight] is the full decode
    table behind {!classical_decoder} as a (syndrome, support) list of
    0/1 strings, sorted by syndrome — the canonical form used to
    assert that two pipelines tabulate identical corrections. *)
val side_table_entries :
  checks:Gf2.Mat.t -> n:int -> max_weight:int -> (string * string) list

(** [superposition_circuit basis] builds a circuit preparing, from
    |0…0⟩, the uniform superposition over the row space of [basis]
    (Hadamards on the RREF pivot qubits, then XOR fan-outs) — the
    generalized "Steane state" preparation of §3.6/Fig. 10: e.g. the
    basis = Hamming parity check gives |0̄⟩'s superposition of the
    even subcode. *)
val superposition_circuit : Gf2.Mat.t -> Circuit.t

(** [css_decoder ~hx ~hz ~n ()] is the CSS decoder: the bit-flip
    syndrome (from the Z-type generators, i.e. the rows of [hz]) and
    the phase-flip syndrome (rows of [hx]) are decoded independently
    as classical errors of weight ≤ [max_weight_per_side] (default 1).
    This matches the paper's recovery procedure exactly — in
    particular an X on one qubit plus a Z on another is corrected,
    where a plain minimum-weight decoder can land in the wrong
    degeneracy coset.  The syndrome layout must be Z-generators first
    then X-generators (the {!make} convention, also Eq. 18's). *)
val css_decoder :
  ?max_weight_per_side:int ->
  hx:Gf2.Mat.t ->
  hz:Gf2.Mat.t ->
  n:int ->
  unit ->
  Stabilizer_code.decoder
