(** The classical [7,4,3] Hamming code (§2, Eqs. 1–3 and 15).

    Sixteen 7-bit codewords annihilated by the parity-check matrix H;
    corrects any single bit flip by syndrome lookup: the syndrome of
    e_i is the i-th column of H. *)

(** The parity-check matrix of Eq. (1): row j, column k is
    [H.(j).(k)]; columns read 1..7 in binary. *)
val parity_check : Gf2.Mat.t

(** The permuted form of Eq. (15), whose first three bits carry the
    data and last four the parity checks (used by the Fig. 3
    encoder). *)
val parity_check_systematic : Gf2.Mat.t

(** [syndrome word] is H·word (length-3). *)
val syndrome : Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [decode word] corrects at most one bit flip: returns the corrected
    codeword and the flipped position (if any).  A two-bit error is
    silently miscorrected — exactly the failure mode of Eq. (12). *)
val decode : Gf2.Bitvec.t -> Gf2.Bitvec.t * int option

(** [is_codeword w]. *)
val is_codeword : Gf2.Bitvec.t -> bool

(** [codewords] — all 16, sorted as integers (bit 0 = leftmost
    character in the paper's ket notation). *)
val codewords : Gf2.Bitvec.t list

(** [even_codewords] / [odd_codewords] — the even-weight subcode
    (superposed in |0̄⟩, Eq. 6) and its odd coset (|1̄⟩, Eq. 7). *)
val even_codewords : Gf2.Bitvec.t list

val odd_codewords : Gf2.Bitvec.t list

(** [encode data] embeds 4 data bits into a codeword using the
    generator dual to {!parity_check}. *)
val encode : Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [minimum_distance] computed by exhaustion (= 3). *)
val minimum_distance : int
