(** Heisenberg-picture conjugation: push a Pauli operator through a
    Clifford circuit, P ↦ U·P·U†, tracking the exact sign.

    This is the algebra behind every fault-propagation argument in
    §3.1 (X spreads forward through an XOR, Z backward), and the
    engine for generating random stabilizer codes (conjugate the
    trivial code's generators by a random Clifford —
    see {!Random_code}). *)

(** [gate g p] — conjugate [p] by one Clifford gate.
    Raises [Invalid_argument] on [Toffoli] (not Clifford). *)
val gate : Circuit.gate -> Pauli.t -> Pauli.t

(** [circuit c p] — conjugate by the whole circuit, first instruction
    applied first (i.e. the evolution of an error that occurred
    *before* the circuit ran).  Only unitary gates allowed. *)
val circuit : Circuit.t -> Pauli.t -> Pauli.t

(** [random_clifford_circuit rng ~n ~gates] — a random Clifford
    circuit (random H/S/CNOT sequence; long sequences mix towards the
    uniform Clifford measure). *)
val random_clifford_circuit : Random.State.t -> n:int -> gates:int -> Circuit.t
