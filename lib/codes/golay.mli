(** The binary Golay code and its quantum child (§5's "better codes
    can be constructed … protect from up to t errors", and the
    concrete alternative to concatenation the paper mentions: "a code
    chosen from the family originally described by Shor may turn out
    to be more efficient than the concatenated 7-bit code").

    The classical [23,12,7] Golay code is *perfect*: the 2047 = 2¹¹ − 1
    nonzero syndromes are exactly the weight ≤ 3 error patterns, so it
    corrects any 3 bit flips.  Its dual (the [23,11,8] even subcode)
    is self-orthogonal, so the CSS construction with H_X = H_Z = the
    dual's generator matrix yields the [[23,1,7]] quantum Golay code,
    correcting any 3 arbitrary qubit errors: block error O(ε⁴) versus
    Steane's O(ε²). *)

(** Generator matrix of the [23,12,7] code (12×23, from the generator
    polynomial x¹¹+x⁹+x⁷+x⁶+x⁵+x+1). *)
val generator : Gf2.Mat.t

(** Parity-check matrix (11×23). *)
val parity_check : Gf2.Mat.t

(** [is_codeword w] — membership in the classical code. *)
val is_codeword : Gf2.Bitvec.t -> bool

(** [weight_distribution ()] — the number of codewords of each weight
    0..23 (computed by enumerating all 4096 codewords; the classic
    values are A₀=1, A₇=253, A₈=506, A₁₁=A₁₂=1288, …). *)
val weight_distribution : unit -> int array

(** [decode w] — correct up to 3 bit flips by syndrome lookup
    (perfect: every syndrome decodes). *)
val decode : Gf2.Bitvec.t -> Gf2.Bitvec.t

(** The [[23,1,7]] quantum Golay code. *)
val code : Stabilizer_code.t

(** [quantum_distance ()] — the exact distance, computed from the
    classical weight enumerators rather than the (infeasible)
    brute-force Pauli search: for a CSS code with H_X = H_Z the
    distance is the least weight appearing in C = ker H but not in
    C⊥ = rowspace H; the Golay code gives min(7 vs dual's 8) = 7. *)
val quantum_distance : unit -> int

(** Decoder correcting up to 3 X and 3 Z errors independently
    (registered as the code's default decoder on first use). *)
val css_decoder : unit -> Stabilizer_code.decoder
