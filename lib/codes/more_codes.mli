(** Further codes from the paper's surrounding literature, exercising
    the generic CSS and stabilizer machinery (§3.6's "more complex
    codes that can correct many errors" direction).

    - {!rep3_bit}: the 3-qubit repetition code — corrects one bit flip
      and no phase flips (distance 1 as a quantum code); the paper's
      pedagogical contrast for why genuinely quantum codes are needed.
    - {!four_two_two}: the [[4,2,2]] error-*detecting* code, the
      smallest CSS code (distance 2: detects any single error).
    - {!reed_muller15}: the [[15,1,3]] quantum Reed–Muller code, the
      standard route to a transversal non-Clifford gate — the "other
      way of completing the universal gate set" alluded to in
      footnote g (Knill–Laflamme–Zurek). *)

val rep3_bit : Stabilizer_code.t
val four_two_two : Stabilizer_code.t
val reed_muller15 : Stabilizer_code.t

(** The H_X (4×15) and H_Z (10×15) parity checks of the Reed–Muller
    code: H_X's column j is the binary representation of j (1..15);
    H_Z adds the pairwise products of H_X's rows. *)
val reed_muller_hx : Gf2.Mat.t

val reed_muller_hz : Gf2.Mat.t
