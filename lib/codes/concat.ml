(* Substitute inner logicals for the letters of an outer operator:
   X ↦ X̄, Z ↦ Z̄, Y ↦ i·X̄·Z̄ on the corresponding subblock. *)
let lift_operator ~(inner : Stabilizer_code.t) ~total outer_op =
  let n_in = inner.Stabilizer_code.n in
  let acc = ref (Pauli.identity total) in
  for i = 0 to Pauli.num_qubits outer_op - 1 do
    let offset = i * n_in in
    let embed p = Stabilizer_code.embed inner ~offset ~total p in
    match Pauli.letter outer_op i with
    | Pauli.I -> ()
    | Pauli.X -> acc := Pauli.mul !acc (embed inner.logical_x.(0))
    | Pauli.Z -> acc := Pauli.mul !acc (embed inner.logical_z.(0))
    | Pauli.Y ->
      let y_bar =
        Pauli.mul_phase
          (Pauli.mul (embed inner.logical_x.(0)) (embed inner.logical_z.(0)))
          1
      in
      acc := Pauli.mul !acc y_bar
  done;
  if Pauli.phase outer_op = 2 then Pauli.neg !acc else !acc

let concatenate (outer : Stabilizer_code.t) (inner : Stabilizer_code.t) =
  if outer.k <> 1 || inner.k <> 1 then
    invalid_arg "Concat.concatenate: only k = 1 codes supported";
  let total = outer.n * inner.n in
  let inner_gens =
    List.concat_map
      (fun block ->
        Array.to_list
          (Array.map
             (Stabilizer_code.embed inner ~offset:(block * inner.n) ~total)
             inner.generators))
      (List.init outer.n Fun.id)
  in
  let outer_gens =
    Array.to_list (Array.map (lift_operator ~inner ~total) outer.generators)
  in
  Stabilizer_code.make
    ~name:(Printf.sprintf "%s∘%s" outer.name inner.name)
    ~generators:(inner_gens @ outer_gens)
    ~logical_x:[ lift_operator ~inner ~total outer.logical_x.(0) ]
    ~logical_z:[ lift_operator ~inner ~total outer.logical_z.(0) ]

let steane_level l =
  if l < 1 then invalid_arg "Concat.steane_level: need l >= 1";
  let rec build l =
    if l = 1 then Steane.code else concatenate (build (l - 1)) Steane.code
  in
  build l
