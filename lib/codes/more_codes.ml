module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

let p = Pauli.of_string

let rep3_bit =
  Stabilizer_code.make ~name:"rep3_bit" ~generators:[ p "ZZI"; p "IZZ" ]
    ~logical_x:[ p "XXX" ] ~logical_z:[ p "ZII" ]

let four_two_two =
  Stabilizer_code.make ~name:"four_two_two"
    ~generators:[ p "XXXX"; p "ZZZZ" ]
    ~logical_x:[ p "XXII"; p "XIXI" ]
    ~logical_z:[ p "ZIZI"; p "ZZII" ]

let reed_muller_hx =
  (* column j (1-based) is the binary representation of j, most
     significant row first *)
  Mat.of_int_lists
    (List.init 4 (fun row ->
         List.init 15 (fun col ->
             let j = col + 1 in
             (j lsr (3 - row)) land 1)))

let reed_muller_hz =
  let rows_hx =
    List.init 4 (fun i -> Mat.row reed_muller_hx i)
  in
  let products =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if j > i then
              Some (Bitvec.and_ (List.nth rows_hx i) (List.nth rows_hx j))
            else None)
          (List.init 4 Fun.id))
      (List.init 4 Fun.id)
  in
  Mat.of_rows (rows_hx @ products)

let reed_muller15 =
  Css.make ~name:"reed_muller15" ~hx:reed_muller_hx ~hz:reed_muller_hz
