let p = Pauli.of_string

let code =
  Stabilizer_code.make ~name:"five_qubit"
    ~generators:[ p "XZZXI"; p "IXZZX"; p "XIXZZ"; p "ZXIXZ" ]
    ~logical_x:[ p "XXXXX" ] ~logical_z:[ p "ZZZZZ" ]
