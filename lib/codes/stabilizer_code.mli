(** Stabilizer codes (§3.6, §4.2): an [[n, k]] code is the joint +1
    eigenspace of n−k commuting Pauli generators, together with chosen
    logical X̄ᵢ/Z̄ᵢ operators obeying Eq. (29). *)

type t = {
  name : string;
  n : int;  (** physical qubits per block *)
  k : int;  (** encoded logical qubits *)
  generators : Pauli.t array;  (** n−k stabilizer generators *)
  logical_x : Pauli.t array;  (** k logical X̄ᵢ *)
  logical_z : Pauli.t array;  (** k logical Z̄ᵢ *)
}

(** [make ~name ~generators ~logical_x ~logical_z] builds and
    validates a code; raises [Invalid_argument] with a description of
    the first violated property:
    generator count = n−k with independent, mutually commuting,
    Hermitian generators; logicals commute with every generator;
    Eq. (29) holds: \[Z̄ᵢ, Z̄ⱼ\] = \[X̄ᵢ, X̄ⱼ\] = 0,
    \[Z̄ᵢ, X̄ⱼ\] = 0 for i ≠ j, and Z̄ᵢX̄ᵢ = −X̄ᵢZ̄ᵢ. *)
val make :
  name:string ->
  generators:Pauli.t list ->
  logical_x:Pauli.t list ->
  logical_z:Pauli.t list ->
  t

(** [syndrome code e] is the length-(n−k) bit vector whose i-th bit
    records whether error [e] anticommutes with generator i. *)
val syndrome : t -> Pauli.t -> Gf2.Bitvec.t

(** [is_logical code p] classifies an error that commutes with the
    whole stabilizer: [`Stabilizer] if p ∈ ±⟨generators⟩ (harmless),
    [`Logical] if it acts on the codespace nontrivially,
    [`Detectable] if it anticommutes with some generator. *)
val classify : t -> Pauli.t -> [ `Stabilizer | `Logical | `Detectable ]

(** [distance code] is the minimum weight of a [`Logical] operator,
    found by exhaustive search in increasing weight (exponential; fine
    for n ≤ 9 and d ≤ 4). *)
val distance : t -> int

(** A syndrome-indexed minimum-weight lookup decoder. *)
type decoder

(** [lookup_decoder ?max_weight code] tabulates, for every reachable
    syndrome, a minimum-weight correction, enumerating errors of
    weight ≤ [max_weight] (default 2 — ample for the distance-3 codes
    here; pass ⌈(d−1)/2⌉ for stronger codes, mindful that the table
    grows as (3n)^max_weight). *)
val lookup_decoder : ?max_weight:int -> t -> decoder

(** [decoder_of_fn ~n f] wraps an arbitrary syndrome→correction
    function as a decoder (used for codes whose decode tables would be
    too large to cross-tabulate, e.g. the Golay code's CSS decoder). *)
val decoder_of_fn : n:int -> (Gf2.Bitvec.t -> Pauli.t option) -> decoder

(** [decoder_of_alist entries] builds a decoder from explicit
    (syndrome-string, correction) pairs — used by the CSS decoder,
    which decodes bit- and phase-flip syndromes independently and so
    picks the right degeneracy coset where plain minimum weight can
    fail (see {!Css}). *)
val decoder_of_alist : (string * Pauli.t) list -> decoder

(** [register_default_decoder code d] makes [d] the decoder
    {!ideal_recover} uses for [code] when none is passed. *)
val register_default_decoder : t -> decoder -> unit

(** [default_decoder code] is the registered decoder, or a cached
    {!lookup_decoder} built on first use. *)
val default_decoder : t -> decoder

(** [decode decoder s] is the tabulated correction for syndrome [s],
    or [None] for an unseen syndrome (beyond the decoder's weight
    budget). *)
val decode : decoder -> Gf2.Bitvec.t -> Pauli.t option

(** [correct decoder code e] composes [e] with its correction and
    classifies the residual: [`Ok] if the residual is a stabilizer
    element (recovery succeeded), [`Logical_error] if recovery
    produced a logical operator (the Eq. 12/13 failure mode),
    [`Unhandled] if the syndrome was missing from the table. *)
val correct : decoder -> t -> Pauli.t -> [ `Ok | `Logical_error | `Unhandled ]

(** [prepare_logical_zero code] is a fresh tableau in the encoded
    |0̄…0̄⟩ state, built by projecting |0…0⟩ onto the +1 eigenspaces of
    every generator and every Z̄ᵢ.  Raises if a projection is
    impossible (never for the codes in this library). *)
val prepare_logical_zero : t -> Tableau.t

(** [prepare_logical_plus code] similarly prepares |+̄…+̄⟩ (projecting
    onto X̄ᵢ = +1). *)
val prepare_logical_plus : t -> Tableau.t

(** [encoding_circuit_via_measurement code] — a concrete circuit
    preparing |0̄…0̄⟩ from |0…0⟩ on [n+1] qubits (qubit [n] is a
    reusable measurement ancilla): each generator and each Z̄ᵢ is
    measured through the ancilla (H — controlled-operator — H —
    measure — reset), and a classically controlled Pauli fix-up flips
    any −1 outcomes.  The fix-up operators are solved over GF(2) to
    anticommute with exactly one measured operator each, so they
    commute with everything already fixed.  Works for *any* stabilizer
    code (the 5-qubit code and the toric code get real encoding
    circuits this way, not just tableau projections); runnable on both
    simulators. *)
val encoding_circuit_via_measurement : t -> Circuit.t

(** [ideal_recover ?decoder code tab rng] performs noise-free error
    correction directly on a tableau: measures every generator with
    {!Tableau.measure_pauli}, looks the syndrome up, applies the
    correction.  Returns the syndrome. *)
val ideal_recover :
  ?decoder:decoder -> t -> Tableau.t -> Random.State.t -> Gf2.Bitvec.t

(** [logical_measure_z code tab rng i] measures Z̄ᵢ ideally and
    returns the outcome (false = |0̄⟩). *)
val logical_measure_z : t -> Tableau.t -> Random.State.t -> int -> bool

(** [embed code ~offset p] pads a block Pauli to a larger register,
    placing the block at qubits [offset..offset+n−1] of a register of
    [total] qubits. *)
val embed : t -> offset:int -> total:int -> Pauli.t -> Pauli.t

(** [pp] prints name, parameters and generators. *)
val pp : Format.formatter -> t -> unit
