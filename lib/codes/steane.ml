module Bitvec = Gf2.Bitvec

let p = Pauli.of_string

let generators =
  [ p "IIIZZZZ"; p "IZZIIZZ"; p "ZIZIZIZ"; p "IIIXXXX"; p "IXXIIXX"; p "XIXIXIX" ]

let code =
  Stabilizer_code.make ~name:"steane" ~generators
    ~logical_x:[ p "XXXXXXX" ] ~logical_z:[ p "ZZZZZZZ" ]

(* 0010110 is a weight-3 odd Hamming codeword; X on its support flips
   the encoded bit, Z on its support flips the encoded phase. *)
let logical_x_weight3 = p "IIXIXXI"
let logical_z_weight3 = p "IIZIZZI"

let input_qubit = 2

let encoding_circuit () =
  let c = Circuit.create ~num_qubits:7 () in
  let open Circuit in
  let c = add_gate c (Cnot (2, 4)) in
  let c = add_gate c (Cnot (2, 5)) in
  (* superpose the even subcode: H on the three subcode controls, then
     switch on the parity bits dictated by the dual-basis rows
     0001111, 0110011, 1010101 of Eq. (1). *)
  let c = add_gate c (H 3) in
  let c = add_gate c (H 1) in
  let c = add_gate c (H 0) in
  let c = add_gate c (Cnot (3, 4)) in
  let c = add_gate c (Cnot (3, 5)) in
  let c = add_gate c (Cnot (3, 6)) in
  let c = add_gate c (Cnot (1, 2)) in
  let c = add_gate c (Cnot (1, 5)) in
  let c = add_gate c (Cnot (1, 6)) in
  let c = add_gate c (Cnot (0, 2)) in
  let c = add_gate c (Cnot (0, 4)) in
  let c = add_gate c (Cnot (0, 6)) in
  c

let amplitudes_of_words words =
  let amps = Array.make 128 Qmath.Cx.zero in
  let a = Qmath.Cx.re (1.0 /. sqrt 8.0) in
  List.iter (fun w -> amps.(Bitvec.to_int w) <- a) words;
  amps

let logical_zero_amplitudes () = amplitudes_of_words Hamming.even_codewords
let logical_one_amplitudes () = amplitudes_of_words Hamming.odd_codewords

(* Decode bit-flip and phase-flip syndromes independently (the
   paper's recovery): registered as the default decoder so that e.g.
   X on one qubit and Z on another is always corrected. *)
let css_decoder () =
  Css.css_decoder ~hx:Hamming.parity_check ~hz:Hamming.parity_check ~n:7 ()

let () = Stabilizer_code.register_default_decoder code (css_decoder ())

let bit_flip_syndrome_bits e =
  Bitvec.sub (Stabilizer_code.syndrome code e) ~pos:0 ~len:3

let phase_flip_syndrome_bits e =
  Bitvec.sub (Stabilizer_code.syndrome code e) ~pos:3 ~len:3
