(** Pauli-frame (purely classical) simulation of ideal error
    correction under stochastic Pauli noise.

    For Pauli noise followed by flawless recovery, the quantum state
    never needs to be represented: the error operator itself is the
    whole story.  Each round composes fresh noise into the frame,
    decodes its syndrome, and classifies the residual's logical
    action.  This is exact — and fast enough to Monte-Carlo the
    *concatenated* Steane code at levels 2 and 3 (49 and 343 qubits),
    exhibiting the double-exponential suppression of Eq. (36) directly
    rather than through the flow-equation model. *)

(** The logical action of a residual error on a k=1 block. *)
type logical_class = L_i | L_x | L_y | L_z

val class_to_string : logical_class -> string

(** [compose a b] — group composition of logical classes (phases
    dropped). *)
val compose : logical_class -> logical_class -> logical_class

(** [residual_class code decoder e] — decode the syndrome of [e],
    apply the tabulated correction and classify the residual.
    [None] when the decoder has no entry for the syndrome (counted as
    failure by the drivers).  The code must have k = 1. *)
val residual_class :
  Stabilizer_code.t -> Stabilizer_code.decoder -> Pauli.t -> logical_class option

(** [steane_class e] — {!residual_class} for the Steane code with its
    CSS decoder (total: every 6-bit syndrome is tabulated, so it never
    returns [None]); exposed separately because the hierarchical
    decoder calls it in bulk. *)
val steane_class : Pauli.t -> logical_class

(** [concatenated_steane_class ~level e] — hierarchical (level-by-level)
    decoding of an error on 7^level qubits (Fig. 14): decode each
    inner block to its logical class, assemble the induced outer-level
    Pauli, recurse. *)
val concatenated_steane_class : level:int -> Pauli.t -> logical_class

(** [depolarize rng ~eps ~n] — IID single-qubit depolarizing noise as
    a Pauli operator (X/Y/Z each with probability eps/3 per qubit). *)
val depolarize : Random.State.t -> eps:float -> n:int -> Pauli.t

type estimate = {
  failures : int;
  trials : int;
  rate : float;
  stderr : float;
}

(** [memory_failure ~level ~eps ~rounds ~trials rng] — the
    concatenated-Steane memory experiment: per round, depolarize every
    physical qubit and recover ideally; failure = nontrivial
    accumulated logical class after [rounds]. *)
val memory_failure :
  level:int -> eps:float -> rounds:int -> trials:int -> Random.State.t -> estimate

(** [memory_failure_mc ?domains ~level ~eps ~rounds ~trials ~seed ()]
    — the same experiment on the shared {!Mc.Runner} engine: trials
    fan out over OCaml 5 domains with per-chunk split RNG streams;
    counts are bit-identical for any [domains]. *)
val memory_failure_mc :
  ?domains:int ->
  level:int ->
  eps:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [code_memory_failure code decoder ~eps ~rounds ~trials rng] — same
    driver for an arbitrary k = 1 code; undecodable syndromes count as
    failures. *)
val code_memory_failure :
  Stabilizer_code.t ->
  Stabilizer_code.decoder ->
  eps:float ->
  rounds:int ->
  trials:int ->
  Random.State.t ->
  estimate

val code_memory_failure_mc :
  ?domains:int ->
  Stabilizer_code.t ->
  Stabilizer_code.decoder ->
  eps:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [biased_depolarize rng ~eps ~eta ~n] — §6's "more realistic error
    model" hook: total error probability [eps] per qubit with Z
    errors [eta] times likelier than X (Y as likely as X);
    [eta] = 1 recovers depolarizing. *)
val biased_depolarize : Random.State.t -> eps:float -> eta:float -> n:int -> Pauli.t

(** [memory_failure_biased ~level ~eps ~eta ~rounds ~trials rng]. *)
val memory_failure_biased :
  level:int ->
  eps:float ->
  eta:float ->
  rounds:int ->
  trials:int ->
  Random.State.t ->
  estimate

val memory_failure_biased_mc :
  ?domains:int ->
  level:int ->
  eps:float ->
  eta:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate
