(** Pauli-frame (purely classical) simulation of ideal error
    correction under stochastic Pauli noise.

    For Pauli noise followed by flawless recovery, the quantum state
    never needs to be represented: the error operator itself is the
    whole story.  Each round composes fresh noise into the frame,
    decodes its syndrome, and classifies the residual's logical
    action.  This is exact — and fast enough to Monte-Carlo the
    *concatenated* Steane code at levels 2 and 3 (49 and 343 qubits),
    exhibiting the double-exponential suppression of Eq. (36) directly
    rather than through the flow-equation model. *)

(** The logical action of a residual error on a k=1 block. *)
type logical_class = L_i | L_x | L_y | L_z

val class_to_string : logical_class -> string

(** [compose a b] — group composition of logical classes (phases
    dropped). *)
val compose : logical_class -> logical_class -> logical_class

(** [residual_class code decoder e] — decode the syndrome of [e],
    apply the tabulated correction and classify the residual.
    [None] when the decoder has no entry for the syndrome (counted as
    failure by the drivers).  The code must have k = 1. *)
val residual_class :
  Stabilizer_code.t -> Stabilizer_code.decoder -> Pauli.t -> logical_class option

(** [steane_class e] — {!residual_class} for the Steane code with its
    CSS decoder (total: every 6-bit syndrome is tabulated, so it never
    returns [None]); exposed separately because the hierarchical
    decoder calls it in bulk. *)
val steane_class : Pauli.t -> logical_class

(** [concatenated_steane_class ~level e] — hierarchical (level-by-level)
    decoding of an error on 7^level qubits (Fig. 14): decode each
    inner block to its logical class, assemble the induced outer-level
    Pauli, recurse. *)
val concatenated_steane_class : level:int -> Pauli.t -> logical_class

(** [depolarize_rng rng ~eps ~n] — IID single-qubit depolarizing noise
    as a Pauli operator (X/Y/Z each with probability eps/3 per qubit).
    [Mc.Rng.t] is the library's single randomness interface. *)
val depolarize_rng : Mc.Rng.t -> eps:float -> n:int -> Pauli.t

(** [depolarize rng ~eps ~n] — compatibility wrapper over
    {!depolarize_rng}: the state is wrapped with
    [Mc.Rng.of_random_state] (shared, not copied), so draws are
    bit-identical to the pre-unification behaviour. *)
val depolarize : Random.State.t -> eps:float -> n:int -> Pauli.t

(** One estimate record for the whole library: {!Mc.Stats.estimate}
    re-exported (with Wilson interval), so every driver returns the
    same shape. *)
type estimate = Mc.Stats.estimate = {
  failures : int;
  trials : int;
  rate : float;
  stderr : float;
  ci_low : float;
  ci_high : float;
}

(** [memory_failure ~level ~eps ~rounds ~trials rng] — the
    concatenated-Steane memory experiment: per round, depolarize every
    physical qubit and recover ideally; failure = nontrivial
    accumulated logical class after [rounds]. *)
val memory_failure :
  level:int -> eps:float -> rounds:int -> trials:int -> Random.State.t -> estimate

(** [memory_failure_mc ?domains ~level ~eps ~rounds ~trials ~seed ()]
    — the same experiment on the shared {!Mc.Runner} engine: trials
    fan out over OCaml 5 domains with per-chunk split RNG streams;
    counts are bit-identical for any [domains].  All [_mc] and
    [_batch] drivers below also accept [?obs:Obs.t] (default
    {!Obs.none}), forwarded to the runner for telemetry that never
    perturbs results. *)
val memory_failure_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  level:int ->
  eps:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [code_memory_failure code decoder ~eps ~rounds ~trials rng] — same
    driver for an arbitrary k = 1 code; undecodable syndromes count as
    failures. *)
val code_memory_failure :
  Stabilizer_code.t ->
  Stabilizer_code.decoder ->
  eps:float ->
  rounds:int ->
  trials:int ->
  Random.State.t ->
  estimate

val code_memory_failure_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  Stabilizer_code.t ->
  Stabilizer_code.decoder ->
  eps:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [biased_depolarize_rng rng ~eps ~eta ~n] — §6's "more realistic
    error model" hook: total error probability [eps] per qubit with Z
    errors [eta] times likelier than X (Y as likely as X);
    [eta] = 1 recovers depolarizing. *)
val biased_depolarize_rng :
  Mc.Rng.t -> eps:float -> eta:float -> n:int -> Pauli.t

(** Compatibility wrapper over {!biased_depolarize_rng} (shared-state
    [Mc.Rng.of_random_state], bit-identical draws). *)
val biased_depolarize : Random.State.t -> eps:float -> eta:float -> n:int -> Pauli.t

(** [memory_failure_biased ~level ~eps ~eta ~rounds ~trials rng]. *)
val memory_failure_biased :
  level:int ->
  eps:float ->
  eta:float ->
  rounds:int ->
  trials:int ->
  Random.State.t ->
  estimate

val memory_failure_biased_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  level:int ->
  eps:float ->
  eta:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** {2 Bit-sliced batch engine}

    64 Monte-Carlo shots per machine word, [tile_width / 64] words
    per tile (default 64 = one word; 256/512 are the tuned widths):
    noise is sampled wordwise from the binary expansion of each
    probability ({!Frame.Sampler}), ideal recovery is a word-wise mux
    of the CSS decoder table applied per lane, and failure indicators
    come back as one bit per shot.

    [`Batch] and [`Scalar] issue the identical {!Frame.Sampler} call
    sequence per tile, so they see the same noise: [`Scalar]
    re-decodes every shot through {!concatenated_steane_class} and the
    failure counts are bit-identical by construction (for any
    [domains] — and for any [tile_width], since lane [j] of tile [c]
    replays width-64 chunk [c·lanes + j]'s RNG stream).  [`Scalar]
    exists as the cross-check and as the like-for-like speedup
    baseline; the legacy [_mc] entry points use per-shot
    [Random.State] sampling and keep their historical counts. *)

type engine = [ `Batch | `Scalar ]

(** [memory_failure_batch ?domains ?engine ?tile_width ~level ~eps
    ~rounds ~trials ~seed ()] — the {!memory_failure_mc} experiment on
    the batch engine (levels 1–3 are the tested range). *)
val memory_failure_batch :
  ?domains:int ->
  ?obs:Obs.t ->
  ?engine:engine ->
  ?tile_width:int ->
  level:int ->
  eps:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

val memory_failure_biased_batch :
  ?domains:int ->
  ?obs:Obs.t ->
  ?engine:engine ->
  ?tile_width:int ->
  level:int ->
  eps:float ->
  eta:float ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** {1 Rare-event estimation}

    The same depolarizing memory as an explicit fault model: one fault
    location per (qubit, round), kinds X/Y/Z, total per-location
    firing probability [eps] — the exact distribution
    {!memory_failure_mc} samples, so the two engines cross-validate on
    identical models. *)

(** [memory_rare_model ~level ~eps ~rounds] — the {!Mc.Runner.model}
    (rare capability only). *)
val memory_rare_model :
  level:int -> eps:float -> rounds:int -> unit Mc.Runner.model

(** [memory_failure_rare ?config ~level ~eps ~rounds ~seed ()] —
    weight-class subset estimate of the memory failure rate
    ({!Mc.Runner.estimate_rare}). *)
val memory_failure_rare :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Mc.Campaign.t ->
  ?z:float ->
  ?config:Mc.Engine.rare ->
  level:int ->
  eps:float ->
  rounds:int ->
  seed:int ->
  unit ->
  Mc.Stats.weighted
