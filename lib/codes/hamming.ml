module Bitvec = Gf2.Bitvec
module Mat = Gf2.Mat

let parity_check =
  Mat.of_int_lists
    [ [ 0; 0; 0; 1; 1; 1; 1 ]; [ 0; 1; 1; 0; 0; 1; 1 ]; [ 1; 0; 1; 0; 1; 0; 1 ] ]

let parity_check_systematic =
  Mat.of_int_lists
    [ [ 1; 0; 0; 1; 0; 1; 1 ]; [ 0; 1; 0; 1; 1; 0; 1 ]; [ 0; 0; 1; 1; 1; 1; 0 ] ]

let syndrome word =
  if Bitvec.length word <> 7 then invalid_arg "Hamming.syndrome: length";
  Mat.mul_vec parity_check word

let is_codeword w = Bitvec.is_zero (syndrome w)

let decode word =
  let s = syndrome word in
  (* columns of H read the position in binary: column k (0-based) is
     the binary digits of k+1, most significant row first. *)
  let value =
    (if Bitvec.get s 0 then 4 else 0)
    + (if Bitvec.get s 1 then 2 else 0)
    + if Bitvec.get s 2 then 1 else 0
  in
  if value = 0 then (Bitvec.copy word, None)
  else begin
    let corrected = Bitvec.copy word in
    Bitvec.flip corrected (value - 1);
    (corrected, Some (value - 1))
  end

let codewords =
  let all = ref [] in
  for x = 0 to 127 do
    let w = Bitvec.of_int ~width:7 x in
    if is_codeword w then all := w :: !all
  done;
  List.rev !all

let even_codewords = List.filter (fun w -> Bitvec.weight w mod 2 = 0) codewords
let odd_codewords = List.filter (fun w -> Bitvec.weight w mod 2 = 1) codewords

let generator =
  (* basis of ker H = the row space of the generator matrix *)
  match Mat.kernel parity_check with
  | [ a; b; c; d ] -> Mat.of_rows [ a; b; c; d ]
  | basis -> Mat.of_rows basis

let encode data =
  if Bitvec.length data <> 4 then invalid_arg "Hamming.encode: need 4 bits";
  Mat.vec_mul data generator

let minimum_distance =
  List.fold_left
    (fun acc w ->
      let wt = Bitvec.weight w in
      if wt > 0 && wt < acc then wt else acc)
    7 codewords
