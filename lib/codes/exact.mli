(** Exact code-capacity analysis by full error enumeration.

    For IID single-qubit depolarizing noise, the failure probability
    of ideal recovery is a polynomial in ε: each of the 4ⁿ Pauli
    patterns occurs with probability ∏(1−ε or ε/3) and either decodes
    or not.  Enumerating them (feasible to n = 9: 262144 patterns)
    yields the *exact* Eq. 14 curve — no Monte-Carlo error bars — and
    exact code-capacity pseudo-thresholds. *)

(** [failure_probability ?metric code decoder ~eps] — exact
    logical-failure probability of one noise+ideal-recovery round
    (k = 1 codes, n ≤ 12 enforced); undecodable syndromes count as
    failures.  [`Any] (default) counts every nontrivial logical class
    — the Eq. 14 fidelity metric, whose bare-qubit counterpart is ε;
    [`Basis_avg] counts what Z-/X-basis readout detects, averaged
    (missing Z̄ in the Z basis and X̄ in the X basis), matching the
    Monte-Carlo drivers, whose bare counterpart is 2ε/3. *)
val failure_probability :
  ?metric:[ `Any | `Basis_avg ] ->
  Stabilizer_code.t ->
  Stabilizer_code.decoder ->
  eps:float ->
  float

(** [failure_polynomial code decoder] — per-class coefficients:
    [(c_x, c_y, c_z)] where c_•.(w) counts the weight-w Pauli patterns
    decoding to that logical class (undecodable patterns are counted
    under c_y, the worst case). *)
val failure_polynomial :
  Stabilizer_code.t ->
  Stabilizer_code.decoder ->
  float array * float array * float array

(** [pseudothreshold ?metric code decoder] — the ε* > 0 where the
    encoded failure equals the matching bare-qubit failure (ε for
    [`Any], 2ε/3 for [`Basis_avg]), found by bisection; [None] if
    encoding never wins on (0, 0.5). *)
val pseudothreshold :
  ?metric:[ `Any | `Basis_avg ] ->
  Stabilizer_code.t ->
  Stabilizer_code.decoder ->
  float option
