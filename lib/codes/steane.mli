(** Steane's 7-qubit code (§2): the CSS code whose codewords satisfy
    the Hamming parity check in both the computational and the
    Hadamard-rotated bases (Eq. 18). *)

(** The [[7,1,3]] code with the six generators of Eq. (18),
    X̄ = X⊗⁷ and Z̄ = Z⊗⁷. *)
val code : Stabilizer_code.t

(** Low-weight representatives of the logical operators (footnote f:
    NOT can be applied with just 3 X's). *)
val logical_x_weight3 : Pauli.t

val logical_z_weight3 : Pauli.t

(** [encoding_circuit ()] is the Fig. 3 encoder: the unknown input
    state sits on qubit {!input_qubit}, all other qubits start |0⟩,
    and the output is a|0̄⟩ + b|1̄⟩ in the Eq. (18) convention.  Uses
    2 + 9 XORs and 3 Hadamards. *)
val encoding_circuit : unit -> Circuit.t

(** The qubit carrying the unknown input state in
    {!encoding_circuit}. *)
val input_qubit : int

(** [logical_zero_amplitudes ()] / [logical_one_amplitudes ()] are the
    exact 128-dimensional amplitude vectors of Eqs. (6) and (7)
    (little-endian indexing: bit q of the index = qubit q, which reads
    kets left-to-right as in the paper). *)
val logical_zero_amplitudes : unit -> Qmath.Cx.t array

val logical_one_amplitudes : unit -> Qmath.Cx.t array

(** [css_decoder ()] decodes the two Hamming syndromes independently
    (registered as the code's default decoder): any single X plus any
    single Z error — on the same or different qubits — is corrected,
    per §2. *)
val css_decoder : unit -> Stabilizer_code.decoder

(** [bit_flip_syndrome_bits e] / [phase_flip_syndrome_bits e] split
    the 6-bit syndrome of an error into the Hamming checks on Z-type
    generators (detecting bit flips) and X-type generators (detecting
    phase flips). *)
val bit_flip_syndrome_bits : Pauli.t -> Gf2.Bitvec.t

val phase_flip_syndrome_bits : Pauli.t -> Gf2.Bitvec.t
