(** Quantum coding bounds (§2's "better codes can be constructed";
    ref. 29 — the quantum Hamming bound the 5-qubit code saturates).

    All arithmetic is exact (arbitrary-size integers are unnecessary at
    these sizes; [float] would not be). *)

(** [quantum_hamming_ok ~n ~k ~t] — the quantum Hamming bound for
    nondegenerate codes: Σ_{j=0}^{t} C(n,j)·3^j ≤ 2^{n−k}. *)
val quantum_hamming_ok : n:int -> k:int -> t:int -> bool

(** [saturates_quantum_hamming ~n ~k ~t] — equality: a *perfect*
    quantum code (the [[5,1,3]] code: 1 + 15 = 2⁴). *)
val saturates_quantum_hamming : n:int -> k:int -> t:int -> bool

(** [quantum_singleton_ok ~n ~k ~d] — the quantum Singleton (Knill–
    Laflamme) bound: n − k ≥ 2(d − 1). *)
val quantum_singleton_ok : n:int -> k:int -> d:int -> bool

(** [check code] — evaluate both bounds for a code using its computed
    distance; returns (hamming_ok, saturates_hamming, singleton_ok).
    The Hamming bound only applies to nondegenerate codes, so
    [hamming_ok = false] for a degenerate code (e.g. Shor's 9-qubit
    code) is not a contradiction — the caller interprets it. *)
val check : Stabilizer_code.t -> bool * bool * bool

(** [check_with ~d code] — same, with the distance supplied by the
    caller (for codes whose brute-force distance search is
    infeasible, e.g. Golay). *)
val check_with : d:int -> Stabilizer_code.t -> bool * bool * bool
