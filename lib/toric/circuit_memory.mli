(** Circuit-level toric-code memory: the §3.6 Kitaev remark made
    concrete.

    "Kitaev invented a family of quantum error-correcting codes such
    that … only four XOR gates are needed to compute each bit of the
    syndrome.  In this case, even if we use just a single ancilla
    qubit for the computation of each syndrome bit …, only a limited
    number of errors can feed back from the ancilla into the data."

    Here each plaquette's Z-check is measured through one bare
    (unverified!) ancilla and four CZ gates under the full §6 gate
    noise — preparation, gate, measurement and idle errors all active,
    error feedback from the ancilla included.  Detection events across
    rounds are decoded on the space-time matching graph, and the run
    is judged by a final noise-free readout.  The threshold is lower
    than the phenomenological model's (every check costs ~6 noisy
    operations) but the protected phase survives — the code family
    really does tolerate bare ancillas, exactly Kitaev's point. *)

type result = {
  l : int;
  rounds : int;
  noise : Ft.Noise.t;
  trials : int;
  failures : int;
  rate : float;
}

(** [run ~l ~rounds ~noise ~trials rng] — [rounds] noisy measurement
    rounds of every plaquette (bit-flip sector only; the phase sector
    is its lattice-dual mirror image) followed by one noise-free
    round, space-time union-find decoding, homology judgment. *)
val run :
  l:int ->
  rounds:int ->
  noise:Ft.Noise.t ->
  trials:int ->
  Random.State.t ->
  result

(** [run_mc ?domains ?obs ~l ~rounds ~noise ~trials ~seed ()] — the
    same experiment on the shared {!Mc.Runner} engine: lattice,
    space-time graph and check operators are built once and shared
    read-only across OCaml 5 domains; counts are bit-identical for any
    [domains], with or without [?obs] telemetry. *)
val run_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  l:int ->
  rounds:int ->
  noise:Ft.Noise.t ->
  trials:int ->
  seed:int ->
  unit ->
  result
