(** Circuit-level toric-code memory: the §3.6 Kitaev remark made
    concrete.

    "Kitaev invented a family of quantum error-correcting codes such
    that … only four XOR gates are needed to compute each bit of the
    syndrome.  In this case, even if we use just a single ancilla
    qubit for the computation of each syndrome bit …, only a limited
    number of errors can feed back from the ancilla into the data."

    Here each plaquette's Z-check is measured through one bare
    (unverified!) ancilla and four CZ gates under the full §6 gate
    noise — preparation, gate, measurement and idle errors all active,
    error feedback from the ancilla included.  Detection events across
    rounds are decoded on the space-time matching graph, and the run
    is judged by a final noise-free readout.  The threshold is lower
    than the phenomenological model's (every check costs ~6 noisy
    operations) but the protected phase survives — the code family
    really does tolerate bare ancillas, exactly Kitaev's point. *)

type result = {
  l : int;
  rounds : int;
  noise : Ft.Noise.t;
  trials : int;
  failures : int;
  rate : float;
}

(** [run ~l ~rounds ~noise ~trials rng] — [rounds] noisy measurement
    rounds of every plaquette (bit-flip sector only; the phase sector
    is its lattice-dual mirror image) followed by one noise-free
    round, space-time union-find decoding, homology judgment. *)
val run :
  l:int ->
  rounds:int ->
  noise:Ft.Noise.t ->
  trials:int ->
  Random.State.t ->
  result

(** [run_mc ?domains ?obs ~l ~rounds ~noise ~trials ~seed ()] — the
    same experiment on the shared {!Mc.Runner} engine: lattice,
    space-time graph and check operators are built once and shared
    read-only across OCaml 5 domains; counts are bit-identical for any
    [domains], with or without [?obs] telemetry. *)
val run_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  l:int ->
  rounds:int ->
  noise:Ft.Noise.t ->
  trials:int ->
  seed:int ->
  unit ->
  result

(** {1 Propagation-free rare-event path}

    A Delfosse–Paetznick-style sampler over an explicit fault model of
    the same circuit: per round, X storage errors on each data edge,
    readout flips on each plaquette, and hook faults (an X injected on
    a leg's data edge right after that plaquette's CZ — the ancilla
    feedback path of Kitaev's four-XOR remark).  The noiseless circuit
    is deterministic and outcome bits are GF(2)-linear in the injected
    X flips, so every single fault's effect (defect toggles + data-X
    footprint) is extracted exactly from one tableau run, and a
    multi-fault configuration evaluates by XOR of dictionary entries —
    no tableau per configuration. *)

type dp_ctx

(** [dp_locations ~l ~rounds] — the fault-model size:
    [rounds · (nq + 5·np)]. *)
val dp_locations : l:int -> rounds:int -> int

(** [dp_model ~l ~rounds ~p ()] — builds the single-fault dictionary
    (one noiseless tableau run per location) and returns a model with
    both a scalar trial (IID Bernoulli(p) over the same locations —
    the like-for-like plain-MC comparator) and the rare capability. *)
val dp_model : l:int -> rounds:int -> p:float -> unit -> dp_ctx Mc.Runner.model

(** [run_dp ~l ~rounds ~p ~trials ~seed ()] — plain Monte Carlo over
    the dictionary (no tableau per shot). *)
val run_dp :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Mc.Campaign.t ->
  l:int ->
  rounds:int ->
  p:float ->
  trials:int ->
  seed:int ->
  unit ->
  Mc.Stats.estimate

(** [run_rare ?config ~l ~rounds ~p ~seed ()] — weight-class subset
    estimate over the circuit-level fault model
    ({!Mc.Runner.estimate_rare}). *)
val run_rare :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Mc.Campaign.t ->
  ?z:float ->
  ?config:Mc.Engine.rare ->
  l:int ->
  rounds:int ->
  p:float ->
  seed:int ->
  unit ->
  Mc.Stats.weighted

(** [dp_self_check ~l ~rounds ~weight ~samples ~seed] — draw
    [samples] random weight-[weight] fault sets and compare the
    dictionary-XOR verdict against direct noiseless simulation of the
    same faults; true iff all agree (the linearity cross-check). *)
val dp_self_check :
  l:int -> rounds:int -> weight:int -> samples:int -> seed:int -> bool
