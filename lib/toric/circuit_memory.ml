module Bitvec = Gf2.Bitvec

type result = {
  l : int;
  rounds : int;
  noise : Ft.Noise.t;
  trials : int;
  failures : int;
  rate : float;
}

(* space-time graph over [rounds]+1 detection layers (noisy rounds plus
   the final noise-free readout layer) *)
let build_graph lat ~layers =
  let np = Lattice.num_plaquettes lat in
  let g = Match_graph.create ~num_nodes:(np * layers) in
  let spatial_qubit = Hashtbl.create (Lattice.num_qubits lat * layers) in
  for t = 0 to layers - 1 do
    for e = 0 to Lattice.num_qubits lat - 1 do
      let a, b = Lattice.edge_endpoints lat e in
      let id = Match_graph.add_edge g ((t * np) + a) ((t * np) + b) in
      Hashtbl.add spatial_qubit id e
    done;
    if t < layers - 1 then
      for p = 0 to np - 1 do
        ignore (Match_graph.add_edge g ((t * np) + p) (((t + 1) * np) + p))
      done
  done;
  (g, spatial_qubit)

let plaquette_op lat ~total ~x ~y =
  List.fold_left
    (fun acc e -> Pauli.mul acc (Pauli.single total e Pauli.Z))
    (Pauli.identity total)
    (Lattice.plaquette_edges lat ~x ~y)

let logical_z_ops lat ~total =
  let l = Lattice.size lat in
  let z_on support =
    List.fold_left
      (fun acc e -> Pauli.mul acc (Pauli.single total e Pauli.Z))
      (Pauli.identity total) support
  in
  ( z_on (List.init l (fun y -> Lattice.v_edge lat ~x:0 ~y)),
    z_on (List.init l (fun x -> Lattice.h_edge lat ~x ~y:0)) )

(* Everything a trial needs that is worth building once: lattice,
   space-time graph, logical operators, plaquette checks.  All
   read-only during trials, so one setup is shared across worker
   domains. *)
type setup = {
  s_l : int;
  lat : Lattice.t;
  nq : int;
  np : int;
  total : int;
  g : Match_graph.t;
  spatial_qubit : (int, int) Hashtbl.t;
  z1 : Pauli.t;
  z2 : Pauli.t;
  plaq_ops : Pauli.t array;
}

let make_setup ~l ~rounds =
  if rounds < 1 then invalid_arg "Circuit_memory.run: rounds >= 1";
  let lat = Lattice.create l in
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  let total = nq + np in
  let layers = rounds + 1 in
  let g, spatial_qubit = build_graph lat ~layers in
  let z1, z2 = logical_z_ops lat ~total in
  let plaq_ops =
    Array.init np (fun p ->
        plaquette_op lat ~total ~x:(p mod l) ~y:(p / l))
  in
  { s_l = l; lat; nq; np; total; g; spatial_qubit; z1; z2; plaq_ops }

let trial_one st ~rounds ~noise rng =
  let { s_l = l; lat; nq; np; total; g; spatial_qubit; z1; z2; plaq_ops } =
    st
  in
  begin
    let sim = Ft.Sim.create ~n:total ~noise rng in
    let tab = Ft.Sim.tableau sim in
    let prev = Bitvec.create np in
    let defects = Array.make (np * (rounds + 1)) false in
    let data_qubits = List.init nq Fun.id in
    for t = 0 to rounds - 1 do
      (* one noisy measurement round: each plaquette through its own
         bare ancilla (|+⟩, four CZs, X readout) — Kitaev's
         single-ancilla scheme *)
      let observed = Bitvec.create np in
      for p = 0 to np - 1 do
        let anc = nq + p in
        Ft.Sim.prepare_plus sim anc;
        List.iter
          (fun e -> Ft.Sim.cz sim anc e)
          (Lattice.plaquette_edges lat ~x:(p mod l) ~y:(p / l));
        if Ft.Sim.measure_x sim anc then Bitvec.set observed p true
      done;
      Ft.Sim.tick sim data_qubits;
      for p = 0 to np - 1 do
        if Bitvec.get observed p <> Bitvec.get prev p then
          defects.((t * np) + p) <- true
      done;
      Bitvec.blit ~src:observed prev
    done;
    (* final noise-free layer: the true syndrome *)
    let final = Bitvec.create np in
    Array.iteri
      (fun p op ->
        if Tableau.measure_pauli_rng tab (Ft.Sim.rng sim) op then
          Bitvec.set final p true)
      plaq_ops;
    for p = 0 to np - 1 do
      if Bitvec.get final p <> Bitvec.get prev p then
        defects.((rounds * np) + p) <- true
    done;
    (* decode in space-time and apply the spatial corrections *)
    let selected = Match_graph.decode g ~defects in
    let correction = Bitvec.create nq in
    Array.iteri
      (fun id on ->
        if on then
          match Hashtbl.find_opt spatial_qubit id with
          | Some e -> Bitvec.flip correction e
          | None -> ())
      selected;
    let cpauli =
      Bitvec.support correction
      |> List.fold_left
           (fun acc e -> Pauli.mul acc (Pauli.single total e Pauli.X))
           (Pauli.identity total)
    in
    Tableau.apply_pauli tab cpauli;
    (* judged by the logical Z loops, which started at +1 *)
    let rng' = Ft.Sim.rng sim in
    let bad1 = Tableau.measure_pauli_rng tab rng' z1 in
    let bad2 = Tableau.measure_pauli_rng tab rng' z2 in
    bad1 || bad2
  end

let result ~l ~rounds ~noise ~trials failures =
  { l;
    rounds;
    noise;
    trials;
    failures;
    rate = float_of_int failures /. float_of_int trials }

let run ~l ~rounds ~noise ~trials rng =
  let st = make_setup ~l ~rounds in
  let failures = ref 0 in
  for _ = 1 to trials do
    if trial_one st ~rounds ~noise rng then incr failures
  done;
  result ~l ~rounds ~noise ~trials !failures

let run_mc ?domains ?obs ~l ~rounds ~noise ~trials ~seed () =
  let st = make_setup ~l ~rounds in
  let failures =
    Mc.Runner.failures ?domains ?obs ~trials ~seed
      (Mc.Runner.scalar (fun rng _ -> trial_one st ~rounds ~noise rng))
  in
  result ~l ~rounds ~noise ~trials failures

(* ------------- propagation-free sampler (Delfosse–Paetznick style)

   The noiseless run of this circuit is fully deterministic: the data
   qubits stay in Z eigenstates throughout (the circuit applies only
   CZ gates, and the fault families below inject only X-type errors),
   so every ancilla X readout and every final stabilizer measurement
   has a predetermined outcome, and each outcome is a GF(2)-linear
   function of the X flips injected so far.  The effect of any single
   fault — the set of detection events it toggles plus the data-X
   footprint it leaves — can therefore be measured exactly by
   injecting it alone into the real tableau simulation, and the
   effect of a multi-fault configuration is the XOR of the
   single-fault effects.  Evaluating a configuration then needs no
   tableau at all: XOR the precomputed dictionaries, run one matching
   call, take one winding parity.

   Fault families, [nq + 5·np] locations per round (loc =
   round · sites + slot):
   - slot in [0, nq):        X on data edge [slot] after the round's
                             measurements (storage errors);
   - slot in [nq, nq+np):    flip of plaquette [slot − nq]'s readout
                             (measurement errors);
   - slot in [nq+np, nq+5np): hook fault — X on leg [k]'s data edge
                             injected right after plaquette [p]'s
                             CZ to that leg (p = (slot−nq−np)/4,
                             k = (slot−nq−np) mod 4), the ancilla
                             feedback path Kitaev's four-XOR remark
                             is about. *)

let dp_sites_per_round st = st.nq + (5 * st.np)
let dp_sites st ~rounds = rounds * dp_sites_per_round st

(* The data edge whose X the fault leaves behind, or -1 (measurement
   flips leave none). *)
let dp_edge st ~loc =
  let lpr = dp_sites_per_round st in
  let slot = loc mod lpr in
  if slot < st.nq then slot
  else if slot < st.nq + st.np then -1
  else begin
    let h = slot - st.nq - st.np in
    let p = h / 4 and k = h mod 4 in
    List.nth (Lattice.plaquette_edges st.lat ~x:(p mod st.s_l) ~y:(p / st.s_l)) k
  end

(* Run the real tableau circuit with zero noise and the given fault
   set injected; return the detection-event pattern.  Deterministic:
   no measurement consumes randomness. *)
let run_faults_sim st ~rounds active =
  let { s_l = l; lat; nq; np; total; plaq_ops; _ } = st in
  let lpr = dp_sites_per_round st in
  let rng = Random.State.make [| 0x5ca1ab1e |] in
  let sim = Ft.Sim.create ~n:total ~noise:Ft.Noise.none rng in
  let tab = Ft.Sim.tableau sim in
  let prev = Bitvec.create np in
  let defects = Array.make (np * (rounds + 1)) false in
  for t = 0 to rounds - 1 do
    let base = t * lpr in
    let observed = Bitvec.create np in
    for p = 0 to np - 1 do
      let anc = nq + p in
      Ft.Sim.prepare_plus sim anc;
      List.iteri
        (fun k e ->
          Ft.Sim.cz sim anc e;
          if active.(base + nq + np + (4 * p) + k) then
            Ft.Sim.inject sim (Pauli.single total e Pauli.X))
        (Lattice.plaquette_edges lat ~x:(p mod l) ~y:(p / l));
      let m = Ft.Sim.measure_x sim anc in
      let m = if active.(base + nq + p) then not m else m in
      if m then Bitvec.set observed p true
    done;
    for e = 0 to nq - 1 do
      if active.(base + e) then
        Ft.Sim.inject sim (Pauli.single total e Pauli.X)
    done;
    for p = 0 to np - 1 do
      if Bitvec.get observed p <> Bitvec.get prev p then
        defects.((t * np) + p) <- true
    done;
    Bitvec.blit ~src:observed prev
  done;
  let final = Bitvec.create np in
  Array.iteri
    (fun p op ->
      if Tableau.measure_pauli_rng tab (Ft.Sim.rng sim) op then
        Bitvec.set final p true)
    plaq_ops;
  for p = 0 to np - 1 do
    if Bitvec.get final p <> Bitvec.get prev p then
      defects.((rounds * np) + p) <- true
  done;
  defects

(* Decode a defect pattern and judge the corrected data error — the
   back half of [trial_one], shared by both evaluation paths. *)
let dp_judge st ~defects ~error =
  let selected = Match_graph.decode st.g ~defects in
  let correction = Bitvec.create st.nq in
  Array.iteri
    (fun id on ->
      if on then
        match Hashtbl.find_opt st.spatial_qubit id with
        | Some e -> Bitvec.flip correction e
        | None -> ())
    selected;
  let residual = Bitvec.xor error correction in
  let wx, wy = Lattice.winding st.lat residual in
  wx || wy

type dp_dict = {
  dd_st : setup;
  dd_rounds : int;
  dd_sites : int;
  dd_defects : int list array;  (* per location: toggled defect nodes *)
  dd_edge : int array;  (* per location: data-X footprint edge or -1 *)
}

let dp_dict ~l ~rounds =
  let st = make_setup ~l ~rounds in
  let n = dp_sites st ~rounds in
  let active = Array.make n false in
  let dd_defects =
    Array.init n (fun loc ->
        active.(loc) <- true;
        let defects = run_faults_sim st ~rounds active in
        active.(loc) <- false;
        let nodes = ref [] in
        Array.iteri (fun i d -> if d then nodes := i :: !nodes) defects;
        !nodes)
  in
  let dd_edge = Array.init n (fun loc -> dp_edge st ~loc) in
  { dd_st = st; dd_rounds = rounds; dd_sites = n; dd_defects; dd_edge }

type dp_ctx = { c_defects : bool array; c_error : Bitvec.t }

let dp_ctx st ~rounds =
  { c_defects = Array.make (st.np * (rounds + 1)) false;
    c_error = Bitvec.create st.nq }

let dp_apply dict ctx loc =
  List.iter
    (fun i -> ctx.c_defects.(i) <- not ctx.c_defects.(i))
    dict.dd_defects.(loc);
  let e = dict.dd_edge.(loc) in
  if e >= 0 then Bitvec.flip ctx.c_error e

let dp_reset ctx =
  Array.fill ctx.c_defects 0 (Array.length ctx.c_defects) false;
  Bitvec.clear ctx.c_error

let dp_eval dict ctx faults =
  dp_reset ctx;
  Array.iter (fun f -> dp_apply dict ctx f.Mc.Subset.loc) faults;
  dp_judge dict.dd_st ~defects:ctx.c_defects ~error:ctx.c_error

let dp_model ~l ~rounds ~p () =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Circuit_memory.dp_model: p must be in [0,1]";
  let dict = dp_dict ~l ~rounds in
  let st = dict.dd_st in
  let n = dict.dd_sites in
  let fault_model = { Mc.Subset.locations = n; kinds = 1; p } in
  (* The scalar trial samples every location IID Bernoulli(p) and
     evaluates through the same dictionary: the propagation-free
     plain-MC comparator over the identical fault model, so the rare
     and plain engines cross-validate like for like. *)
  let trial ctx rng _ =
    dp_reset ctx;
    for loc = 0 to n - 1 do
      if Random.State.float rng 1.0 < p then dp_apply dict ctx loc
    done;
    dp_judge st ~defects:ctx.c_defects ~error:ctx.c_error
  in
  Mc.Runner.model
    ~worker_init:(fun () -> dp_ctx st ~rounds)
    ~trial
    ~rare:{ Mc.Runner.fault_model; evaluate = dp_eval dict }
    ()

let dp_locations ~l ~rounds =
  let st = make_setup ~l ~rounds in
  dp_sites st ~rounds

let run_dp ?domains ?chunk ?obs ?campaign ~l ~rounds ~p ~trials ~seed () =
  Mc.Runner.estimate ?domains ?chunk ?obs ?campaign ~trials ~seed
    (dp_model ~l ~rounds ~p ())

let run_rare ?domains ?chunk ?obs ?campaign ?z ?config ~l ~rounds ~p ~seed ()
    =
  Mc.Runner.estimate_rare ?domains ?chunk ?obs ?campaign ?z ?config ~seed
    (dp_model ~l ~rounds ~p ())

(* Cross-check the XOR dictionary against direct simulation on random
   weight-[weight] fault sets: returns false iff any configuration's
   verdict differs.  (A test hook: exercises the linearity the
   dictionary evaluation rests on.) *)
let dp_self_check ~l ~rounds ~weight ~samples ~seed =
  let dict = dp_dict ~l ~rounds in
  let st = dict.dd_st in
  let fm = { Mc.Subset.locations = dict.dd_sites; kinds = 1; p = 0.5 } in
  let rng = Random.State.make [| seed |] in
  let ctx = dp_ctx st ~rounds in
  let ok = ref true in
  for _ = 1 to samples do
    let faults = Mc.Subset.sample fm ~weight rng in
    let via_dict = dp_eval dict ctx faults in
    let active = Array.make dict.dd_sites false in
    Array.iter (fun f -> active.(f.Mc.Subset.loc) <- true) faults;
    let defects = run_faults_sim st ~rounds active in
    let error = Bitvec.create st.nq in
    Array.iter
      (fun f ->
        let e = dict.dd_edge.(f.Mc.Subset.loc) in
        if e >= 0 then Bitvec.flip error e)
      faults;
    if via_dict <> dp_judge st ~defects ~error then ok := false
  done;
  !ok
