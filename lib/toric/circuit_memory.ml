module Bitvec = Gf2.Bitvec

type result = {
  l : int;
  rounds : int;
  noise : Ft.Noise.t;
  trials : int;
  failures : int;
  rate : float;
}

(* space-time graph over [rounds]+1 detection layers (noisy rounds plus
   the final noise-free readout layer) *)
let build_graph lat ~layers =
  let np = Lattice.num_plaquettes lat in
  let g = Match_graph.create ~num_nodes:(np * layers) in
  let spatial_qubit = Hashtbl.create (Lattice.num_qubits lat * layers) in
  for t = 0 to layers - 1 do
    for e = 0 to Lattice.num_qubits lat - 1 do
      let a, b = Lattice.edge_endpoints lat e in
      let id = Match_graph.add_edge g ((t * np) + a) ((t * np) + b) in
      Hashtbl.add spatial_qubit id e
    done;
    if t < layers - 1 then
      for p = 0 to np - 1 do
        ignore (Match_graph.add_edge g ((t * np) + p) (((t + 1) * np) + p))
      done
  done;
  (g, spatial_qubit)

let plaquette_op lat ~total ~x ~y =
  List.fold_left
    (fun acc e -> Pauli.mul acc (Pauli.single total e Pauli.Z))
    (Pauli.identity total)
    (Lattice.plaquette_edges lat ~x ~y)

let logical_z_ops lat ~total =
  let l = Lattice.size lat in
  let z_on support =
    List.fold_left
      (fun acc e -> Pauli.mul acc (Pauli.single total e Pauli.Z))
      (Pauli.identity total) support
  in
  ( z_on (List.init l (fun y -> Lattice.v_edge lat ~x:0 ~y)),
    z_on (List.init l (fun x -> Lattice.h_edge lat ~x ~y:0)) )

(* Everything a trial needs that is worth building once: lattice,
   space-time graph, logical operators, plaquette checks.  All
   read-only during trials, so one setup is shared across worker
   domains. *)
type setup = {
  s_l : int;
  lat : Lattice.t;
  nq : int;
  np : int;
  total : int;
  g : Match_graph.t;
  spatial_qubit : (int, int) Hashtbl.t;
  z1 : Pauli.t;
  z2 : Pauli.t;
  plaq_ops : Pauli.t array;
}

let make_setup ~l ~rounds =
  if rounds < 1 then invalid_arg "Circuit_memory.run: rounds >= 1";
  let lat = Lattice.create l in
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  let total = nq + np in
  let layers = rounds + 1 in
  let g, spatial_qubit = build_graph lat ~layers in
  let z1, z2 = logical_z_ops lat ~total in
  let plaq_ops =
    Array.init np (fun p ->
        plaquette_op lat ~total ~x:(p mod l) ~y:(p / l))
  in
  { s_l = l; lat; nq; np; total; g; spatial_qubit; z1; z2; plaq_ops }

let trial_one st ~rounds ~noise rng =
  let { s_l = l; lat; nq; np; total; g; spatial_qubit; z1; z2; plaq_ops } =
    st
  in
  begin
    let sim = Ft.Sim.create ~n:total ~noise rng in
    let tab = Ft.Sim.tableau sim in
    let prev = Bitvec.create np in
    let defects = Array.make (np * (rounds + 1)) false in
    let data_qubits = List.init nq Fun.id in
    for t = 0 to rounds - 1 do
      (* one noisy measurement round: each plaquette through its own
         bare ancilla (|+⟩, four CZs, X readout) — Kitaev's
         single-ancilla scheme *)
      let observed = Bitvec.create np in
      for p = 0 to np - 1 do
        let anc = nq + p in
        Ft.Sim.prepare_plus sim anc;
        List.iter
          (fun e -> Ft.Sim.cz sim anc e)
          (Lattice.plaquette_edges lat ~x:(p mod l) ~y:(p / l));
        if Ft.Sim.measure_x sim anc then Bitvec.set observed p true
      done;
      Ft.Sim.tick sim data_qubits;
      for p = 0 to np - 1 do
        if Bitvec.get observed p <> Bitvec.get prev p then
          defects.((t * np) + p) <- true
      done;
      Bitvec.blit ~src:observed prev
    done;
    (* final noise-free layer: the true syndrome *)
    let final = Bitvec.create np in
    Array.iteri
      (fun p op ->
        if Tableau.measure_pauli_rng tab (Ft.Sim.rng sim) op then
          Bitvec.set final p true)
      plaq_ops;
    for p = 0 to np - 1 do
      if Bitvec.get final p <> Bitvec.get prev p then
        defects.((rounds * np) + p) <- true
    done;
    (* decode in space-time and apply the spatial corrections *)
    let selected = Match_graph.decode g ~defects in
    let correction = Bitvec.create nq in
    Array.iteri
      (fun id on ->
        if on then
          match Hashtbl.find_opt spatial_qubit id with
          | Some e -> Bitvec.flip correction e
          | None -> ())
      selected;
    let cpauli =
      Bitvec.support correction
      |> List.fold_left
           (fun acc e -> Pauli.mul acc (Pauli.single total e Pauli.X))
           (Pauli.identity total)
    in
    Tableau.apply_pauli tab cpauli;
    (* judged by the logical Z loops, which started at +1 *)
    let rng' = Ft.Sim.rng sim in
    let bad1 = Tableau.measure_pauli_rng tab rng' z1 in
    let bad2 = Tableau.measure_pauli_rng tab rng' z2 in
    bad1 || bad2
  end

let result ~l ~rounds ~noise ~trials failures =
  { l;
    rounds;
    noise;
    trials;
    failures;
    rate = float_of_int failures /. float_of_int trials }

let run ~l ~rounds ~noise ~trials rng =
  let st = make_setup ~l ~rounds in
  let failures = ref 0 in
  for _ = 1 to trials do
    if trial_one st ~rounds ~noise rng then incr failures
  done;
  result ~l ~rounds ~noise ~trials !failures

let run_mc ?domains ?obs ~l ~rounds ~noise ~trials ~seed () =
  let st = make_setup ~l ~rounds in
  let failures =
    Mc.Runner.failures ?domains ?obs ~trials ~seed (fun rng _ ->
        trial_one st ~rounds ~noise rng)
  in
  result ~l ~rounds ~noise ~trials failures
