(** The toric code as an explicit [[2L², 2, L]] stabilizer code, for
    small L: plugs Kitaev's spin model (§7, Fig. 17) into the generic
    stabilizer machinery (syndromes, distance, tableau preparation).
    One plaquette and one vertex operator are dropped from the
    generator list — their products over the whole torus are
    identities, so only 2L² − 2 generators are independent. *)

(** [stabilizer_code l] — the [[2L², 2]] code (practical for
    L ≤ 4 with the exhaustive distance search; the code itself scales
    further). *)
val stabilizer_code : int -> Codes.Stabilizer_code.t
