module Bitvec = Gf2.Bitvec

let pauli_on n letter support =
  List.fold_left
    (fun acc q -> Pauli.mul acc (Pauli.single n q letter))
    (Pauli.identity n) support

let stabilizer_code l =
  let lat = Lattice.create l in
  let n = Lattice.num_qubits lat in
  let plaquettes = ref [] and vertices = ref [] in
  for y = 0 to l - 1 do
    for x = 0 to l - 1 do
      (* drop the last operator of each type: dependent on the rest *)
      if not (x = l - 1 && y = l - 1) then begin
        plaquettes :=
          pauli_on n Pauli.Z (Lattice.plaquette_edges lat ~x ~y) :: !plaquettes;
        vertices :=
          pauli_on n Pauli.X (Lattice.vertex_edges lat ~x ~y) :: !vertices
      end
    done
  done;
  (* X̄ᵢ: noncontractible X loops (flip plaquette-syndrome winding);
     Z̄ᵢ: dual noncontractible Z loops chosen to pair correctly:
     Z̄₁ must anticommute with X̄₁ (share an odd number of qubits). *)
  let x1 = Lattice.logical_x1 lat in
  (* vertical column of v-edges *)
  let x2 = Lattice.logical_x2 lat in
  let support_of v = Bitvec.support v in
  let lx1 = pauli_on n Pauli.X (support_of x1) in
  let lx2 = pauli_on n Pauli.X (support_of x2) in
  (* Z̄₁: loop of h-edges along a row of vertices crossing x1 once:
     the co-loop {h(x, y0)} shares exactly h-edges with x2 and
     v-edges with... choose duals explicitly: *)
  let z1 =
    (* z-loop sharing exactly one qubit with x1 = {v(x,0)}: take
       {v(0,y) : all y} — shares v(0,0) only *)
    List.init l (fun y -> Lattice.v_edge lat ~x:0 ~y)
  in
  let z2 =
    (* shares exactly h(0,0) with x2 = {h(0,y)} *)
    List.init l (fun x -> Lattice.h_edge lat ~x ~y:0)
  in
  let lz1 = pauli_on n Pauli.Z z1 in
  let lz2 = pauli_on n Pauli.Z z2 in
  Codes.Stabilizer_code.make
    ~name:(Printf.sprintf "toric_%d" l)
    ~generators:(List.rev !plaquettes @ List.rev !vertices)
    ~logical_x:[ lx1; lx2 ] ~logical_z:[ lz1; lz2 ]
