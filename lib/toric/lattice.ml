module Bitvec = Gf2.Bitvec

type t = { l : int }

let create l =
  if l < 2 then invalid_arg "Lattice.create: need L >= 2";
  { l }

let size t = t.l
let num_qubits t = 2 * t.l * t.l
let num_plaquettes t = t.l * t.l
let modl t x = ((x mod t.l) + t.l) mod t.l
let h_edge t ~x ~y = 2 * ((modl t y * t.l) + modl t x)
let v_edge t ~x ~y = (2 * ((modl t y * t.l) + modl t x)) + 1
let plaquette_index t ~x ~y = (modl t y * t.l) + modl t x

let plaquette_edges t ~x ~y =
  [ h_edge t ~x ~y; h_edge t ~x ~y:(y + 1); v_edge t ~x ~y; v_edge t ~x:(x + 1) ~y ]

let vertex_edges t ~x ~y =
  (* vertex (x,y) touches the two horizontal edges h(x−1,y), h(x,y)
     and the two vertical edges v(x,y−1), v(x,y) *)
  [ h_edge t ~x:(x - 1) ~y; h_edge t ~x ~y; v_edge t ~x ~y:(y - 1); v_edge t ~x ~y ]

let edge_endpoints t e =
  let idx = e / 2 in
  let x = idx mod t.l and y = idx / t.l in
  if e land 1 = 0 then
    (* h(x,y): separates plaquettes (x,y) and (x,y−1) *)
    (plaquette_index t ~x ~y, plaquette_index t ~x ~y:(y - 1))
  else
    (* v(x,y): separates plaquettes (x,y) and (x−1,y) *)
    (plaquette_index t ~x ~y, plaquette_index t ~x:(x - 1) ~y)

let syndrome t error =
  if Bitvec.length error <> num_qubits t then invalid_arg "Lattice.syndrome";
  let s = Bitvec.create (num_plaquettes t) in
  Bitvec.iteri
    (fun e set ->
      if set then begin
        let a, b = edge_endpoints t e in
        Bitvec.flip s a;
        Bitvec.flip s b
      end)
    error;
  s

let winding t error =
  let wx = ref false and wy = ref false in
  for y = 0 to t.l - 1 do
    if Bitvec.get error (v_edge t ~x:0 ~y) then wx := not !wx
  done;
  for x = 0 to t.l - 1 do
    if Bitvec.get error (h_edge t ~x ~y:0) then wy := not !wy
  done;
  (!wx, !wy)

let logical_x1 t =
  let v = Bitvec.create (num_qubits t) in
  for x = 0 to t.l - 1 do
    Bitvec.set v (v_edge t ~x ~y:0) true
  done;
  v

let logical_x2 t =
  let v = Bitvec.create (num_qubits t) in
  for y = 0 to t.l - 1 do
    Bitvec.set v (h_edge t ~x:0 ~y) true
  done;
  v
