(** Generic union-find + peeling matching decoder over an arbitrary
    graph.

    Nodes carry defect marks (an even number per connected component
    once boundary conditions are periodic); the decoder returns an
    edge set whose boundary is exactly the defect set.  Used by the
    2-D toric decoder ({!Decoder}) and by the space-time (3-D) decoder
    that handles noisy syndrome measurements ({!Noisy_memory}). *)

type t

(** [create ~num_nodes] — an empty graph. *)
val create : num_nodes:int -> t

val num_nodes : t -> int
val num_edges : t -> int

(** [add_edge g a b] — returns the new edge's id. *)
val add_edge : t -> int -> int -> int

(** [endpoints g e]. *)
val endpoints : t -> int -> int * int

(** [decode g ~defects] — an edge set (indexed by edge id) whose
    boundary equals the defect set.  Requires even defect parity per
    connected component; raises [Invalid_argument] otherwise. *)
val decode : t -> defects:bool array -> bool array
