module Bitvec = Gf2.Bitvec

(* The 2-D decoder is the generic union-find/peeling engine
   (Match_graph) run on the lattice's plaquette-adjacency graph; the
   graph is cached per lattice size. *)

let graphs : (int, Match_graph.t) Hashtbl.t = Hashtbl.create 4

let graph_for lat =
  let l = Lattice.size lat in
  match Hashtbl.find_opt graphs l with
  | Some g -> g
  | None ->
    let g = Match_graph.create ~num_nodes:(Lattice.num_plaquettes lat) in
    for e = 0 to Lattice.num_qubits lat - 1 do
      let a, b = Lattice.edge_endpoints lat e in
      (* edge ids coincide with qubit indices: edges are added in
         qubit order *)
      ignore (Match_graph.add_edge g a b)
    done;
    Hashtbl.add graphs l g;
    g

let decode lat syndrome =
  let n_nodes = Lattice.num_plaquettes lat in
  if Bitvec.length syndrome <> n_nodes then invalid_arg "Decoder.decode";
  let g = graph_for lat in
  let defects = Array.init n_nodes (Bitvec.get syndrome) in
  let selected = Match_graph.decode g ~defects in
  let correction = Bitvec.create (Lattice.num_qubits lat) in
  Array.iteri (fun e on -> if on then Bitvec.set correction e true) selected;
  correction

(* --- greedy baseline ------------------------------------------------ *)

let torus_dist l a b =
  let d = abs (a - b) in
  min d (l - d)

let geodesic lat correction (x1, y1) (x2, y2) =
  let l = Lattice.size lat in
  (* walk in x then in y along shortest wraps *)
  let step_x = if ((x2 - x1) mod l + l) mod l <= l / 2 then 1 else -1 in
  let x = ref x1 in
  while !x <> x2 do
    let vx = if step_x = 1 then !x + 1 else !x in
    Bitvec.flip correction (Lattice.v_edge lat ~x:vx ~y:y1);
    x := (!x + step_x + l) mod l
  done;
  let step_y = if ((y2 - y1) mod l + l) mod l <= l / 2 then 1 else -1 in
  let y = ref y1 in
  while !y <> y2 do
    let hy = if step_y = 1 then !y + 1 else !y in
    Bitvec.flip correction (Lattice.h_edge lat ~x:x2 ~y:hy);
    y := (!y + step_y + l) mod l
  done

let greedy_decode lat syndrome =
  let l = Lattice.size lat in
  let defects = ref [] in
  Bitvec.iteri
    (fun i set -> if set then defects := (i mod l, i / l) :: !defects)
    syndrome;
  let correction = Bitvec.create (Lattice.num_qubits lat) in
  let rec pair = function
    | [] -> ()
    | [ _ ] -> invalid_arg "greedy_decode: odd number of defects"
    | (d :: _) as ds ->
      let rest = List.tl ds in
      let best =
        List.fold_left
          (fun (bd, bdist) d2 ->
            let dist =
              torus_dist l (fst d) (fst d2) + torus_dist l (snd d) (snd d2)
            in
            if dist < bdist then (d2, dist) else (bd, bdist))
          (List.hd rest, max_int) rest
      in
      let mate = fst best in
      geodesic lat correction d mate;
      pair (List.filter (fun x -> x <> d && x <> mate) ds)
  in
  pair !defects;
  correction
