module Bitvec = Gf2.Bitvec

type result = { l : int; p : float; trials : int; failures : int; rate : float }

(* One trial: sample IID X noise into [error] (fully overwritten),
   decode, judge the residual's homology class.  [lat] is immutable
   after creation and [Decoder] allocates its own scratch, so one
   lattice is safely shared across domains. *)
let trial_one lat ~decoder ~p error rng =
  Bitvec.randomize ~p rng error;
  let syndrome = Lattice.syndrome lat error in
  let correction =
    match decoder with
    | `Union_find -> Decoder.decode lat syndrome
    | `Greedy -> Decoder.greedy_decode lat syndrome
  in
  let residual = Bitvec.xor error correction in
  (* sanity: the residual must have trivial syndrome *)
  assert (Bitvec.is_zero (Lattice.syndrome lat residual));
  let wx, wy = Lattice.winding lat residual in
  wx || wy

let result ~l ~p ~trials failures =
  { l; p; trials; failures; rate = float_of_int failures /. float_of_int trials }

let run ?(decoder = `Union_find) ~l ~p ~trials rng =
  let lat = Lattice.create l in
  let error = Bitvec.create (Lattice.num_qubits lat) in
  let failures = ref 0 in
  for _ = 1 to trials do
    if trial_one lat ~decoder ~p error rng then incr failures
  done;
  result ~l ~p ~trials !failures

let run_mc ?domains ?obs ?(decoder = `Union_find) ~l ~p ~trials ~seed () =
  let lat = Lattice.create l in
  let failures =
    Mc.Runner.failures_ctx ?domains ?obs ~trials ~seed
      ~worker_init:(fun () -> Bitvec.create (Lattice.num_qubits lat))
      (fun error rng _ -> trial_one lat ~decoder ~p error rng)
  in
  result ~l ~p ~trials failures

(* Bit-sliced batch engine: 64 shots per word.  Noise and plaquette
   syndromes are word-wise; only shots with a nonzero syndrome fall
   back to the per-shot decoder (at interesting p most shots below
   threshold are clean, so the word path does the bulk of the work).
   [`Scalar] re-runs every extracted shot through the existing
   Lattice.syndrome / Decoder pipeline on the same sampled noise, so
   its counts are bit-identical to [`Batch] by construction. *)
let plaquette_checks lat ~l =
  Array.init (Lattice.num_plaquettes lat) (fun idx ->
      let x = idx mod l and y = idx / l in
      {
        Frame.Program.x_sel = Array.of_list (Lattice.plaquette_edges lat ~x ~y);
        z_sel = [||];
      })

let winding_selectors lat ~l =
  ( Array.init l (fun y -> Lattice.v_edge lat ~x:0 ~y),
    Array.init l (fun x -> Lattice.h_edge lat ~x ~y:0) )

let run_batch ?domains ?obs ?(engine = `Batch) ?(decoder = `Union_find) ~l ~p
    ~trials ~seed () =
  let lat = Lattice.create l in
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  let qubits = Array.init nq Fun.id in
  let prog =
    Frame.Program.make ~n:nq
      [ Frame.Program.Flip_x { qubits; p };
        Frame.Program.Extract (plaquette_checks lat ~l) ]
  in
  let wx_sel, wy_sel = winding_selectors lat ~l in
  let decode syndrome =
    match decoder with
    | `Union_find -> Decoder.decode lat syndrome
    | `Greedy -> Decoder.greedy_decode lat syndrome
  in
  let decode_shot plane out fail k ~use_word_syndrome =
    let error = Frame.Plane.extract_shot_x plane k in
    let syndrome =
      if use_word_syndrome then Frame.Plane.shot_vec out k
      else Lattice.syndrome lat error
    in
    let correction = decode syndrome in
    let residual = Bitvec.xor error correction in
    assert (Bitvec.is_zero (Lattice.syndrome lat residual));
    let wx, wy = Lattice.winding lat residual in
    if wx || wy then fail := Int64.logor !fail (Int64.shift_left 1L k)
  in
  let batch (plane, out) key ~base:_ ~count =
    let sampler = Frame.Sampler.create key in
    Frame.Plane.clear plane;
    Frame.Program.run_into prog sampler plane out;
    match engine with
    | `Batch ->
      (* word path for clean shots, per-shot decode for the rest *)
      let any = Array.fold_left Int64.logor 0L out in
      let clean_winding =
        Int64.logor
          (Frame.Plane.parity_x plane wx_sel)
          (Frame.Plane.parity_x plane wy_sel)
      in
      let fail = ref (Int64.logand clean_winding (Int64.lognot any)) in
      for k = 0 to count - 1 do
        if Frame.Plane.bit any k then
          decode_shot plane out fail k ~use_word_syndrome:true
      done;
      !fail
    | `Scalar ->
      let fail = ref 0L in
      for k = 0 to count - 1 do
        decode_shot plane out fail k ~use_word_syndrome:false
      done;
      !fail
  in
  let failures =
    Mc.Runner.failures_batched ?domains ?obs ~trials ~seed
      ~worker_init:(fun () -> (Frame.Plane.create nq, Array.make np 0L))
      batch
  in
  result ~l ~p ~trials failures

let scan ?(decoder = `Union_find) ~ls ~ps ~trials rng =
  List.concat_map
    (fun l -> List.map (fun p -> run ~decoder ~l ~p ~trials rng) ps)
    ls

let scan_mc ?domains ?obs ?(decoder = `Union_find) ~ls ~ps ~trials ~seed () =
  List.concat_map
    (fun l ->
      List.mapi
        (fun i p ->
          run_mc ?domains ?obs ~decoder ~l ~p ~trials
            ~seed:(Mc.Rng.derive seed [ l; i ])
            ())
        ps)
    ls
