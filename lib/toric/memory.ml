module Bitvec = Gf2.Bitvec

type result = { l : int; p : float; trials : int; failures : int; rate : float }

(* One trial: sample IID X noise into [error] (fully overwritten),
   decode, judge the residual's homology class.  [lat] is immutable
   after creation and [Decoder] allocates its own scratch, so one
   lattice is safely shared across domains. *)
let trial_one lat ~decoder ~p error rng =
  Bitvec.randomize ~p rng error;
  let syndrome = Lattice.syndrome lat error in
  let correction =
    match decoder with
    | `Union_find -> Decoder.decode lat syndrome
    | `Greedy -> Decoder.greedy_decode lat syndrome
  in
  let residual = Bitvec.xor error correction in
  (* sanity: the residual must have trivial syndrome *)
  assert (Bitvec.is_zero (Lattice.syndrome lat residual));
  let wx, wy = Lattice.winding lat residual in
  wx || wy

let result ~l ~p ~trials failures =
  { l; p; trials; failures; rate = float_of_int failures /. float_of_int trials }

let run ?(decoder = `Union_find) ~l ~p ~trials rng =
  let lat = Lattice.create l in
  let error = Bitvec.create (Lattice.num_qubits lat) in
  let failures = ref 0 in
  for _ = 1 to trials do
    if trial_one lat ~decoder ~p error rng then incr failures
  done;
  result ~l ~p ~trials !failures

let run_mc ?domains ?obs ?(decoder = `Union_find) ~l ~p ~trials ~seed () =
  let lat = Lattice.create l in
  let failures =
    Mc.Runner.failures ?domains ?obs ~trials ~seed
      (Mc.Runner.model
         ~worker_init:(fun () -> Bitvec.create (Lattice.num_qubits lat))
         ~trial:(fun error rng _ -> trial_one lat ~decoder ~p error rng)
         ())
  in
  result ~l ~p ~trials failures

(* Bit-sliced batch engine: 64 shots per word, [tile_width / 64]
   words per tile.  Noise and plaquette syndromes are word-wise; an
   early parity-based split sends clean shots (no defects anywhere)
   through word-parallel winding, and only defect shots fall back to
   the per-shot decoder (at interesting p most shots below threshold
   are clean, so the word path does the bulk of the work).  Defect
   shots of a lane are extracted tile-at-a-time through a 64x64
   block transpose of the error plane and syndrome rows instead of
   per-shot bit-probing ([Plane.shot_vec]) — the matcher front-end is
   batched; only the matching itself stays per shot.  [`Scalar]
   re-runs every extracted shot through the existing
   Lattice.syndrome / Decoder pipeline on the same sampled noise, so
   its counts are bit-identical to [`Batch] by construction. *)
let plaquette_checks lat ~l =
  Array.init (Lattice.num_plaquettes lat) (fun idx ->
      let x = idx mod l and y = idx / l in
      {
        Frame.Program.x_sel = Array.of_list (Lattice.plaquette_edges lat ~x ~y);
        z_sel = [||];
      })

let winding_selectors lat ~l =
  ( Array.init l (fun y -> Lattice.v_edge lat ~x:0 ~y),
    Array.init l (fun x -> Lattice.h_edge lat ~x ~y:0) )

(* Lanes with at least this many defect shots extract them through
   the block transpose; sparser lanes bit-probe per shot (a 64x64
   transpose costs ~6x64 word ops per block, so it amortizes after a
   few shots). *)
let transpose_threshold = 3

let run_batch ?domains ?obs ?campaign ?(engine = `Batch)
    ?(decoder = `Union_find) ?(tile_width = 64) ~l ~p ~trials ~seed () =
  let lat = Lattice.create l in
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  if tile_width < 64 || tile_width mod 64 <> 0 then
    invalid_arg "Toric.Memory: tile_width must be a positive multiple of 64";
  let lanes = tile_width / 64 in
  let qubits = Array.init nq Fun.id in
  let prog =
    Frame.Program.make ~n:nq
      [ Frame.Program.Flip_x { qubits; p };
        Frame.Program.Extract (plaquette_checks lat ~l) ]
  in
  let wx_sel, wy_sel = winding_selectors lat ~l in
  let eb = (nq + 63) / 64 * 64 and sb = (np + 63) / 64 * 64 in
  let decode syndrome =
    match decoder with
    | `Union_find -> Decoder.decode lat syndrome
    | `Greedy -> Decoder.greedy_decode lat syndrome
  in
  let judge error syndrome fail b =
    let correction = decode syndrome in
    let residual = Bitvec.xor error correction in
    assert (Bitvec.is_zero (Lattice.syndrome lat residual));
    let wx, wy = Lattice.winding lat residual in
    if wx || wy then fail := Int64.logor !fail (Int64.shift_left 1L b)
  in
  let batch (plane, out, terr, tsyn) keys ~base:_ ~count =
    let sampler = Frame.Sampler.create_tile keys in
    Frame.Plane.clear plane;
    Frame.Program.run_into prog sampler plane out;
    match engine with
    | `Batch ->
      (* early clean/defect split per lane: word path for clean
         shots, transposed extraction + per-shot decode for the
         rest *)
      Array.init lanes (fun j ->
          let live = min 64 (count - (64 * j)) in
          let any = ref 0L in
          for i = 0 to np - 1 do
            any := Int64.logor !any out.((i * lanes) + j)
          done;
          let clean_winding =
            Int64.logor
              (Frame.Plane.parity_x ~lane:j plane wx_sel)
              (Frame.Plane.parity_x ~lane:j plane wy_sel)
          in
          let any = !any in
          let fail = ref (Int64.logand clean_winding (Int64.lognot any)) in
          if any <> 0L then begin
            let nd =
              Mc.Runner.popcount64
                (Int64.logand any (Mc.Runner.live_mask (max live 0)))
            in
            if nd >= transpose_threshold then begin
              Frame.Plane.transpose_x plane ~lane:j terr;
              Frame.Plane.transpose_rows ~src:out ~lanes ~lane:j ~pos:0
                ~nrows:np tsyn;
              for b = 0 to live - 1 do
                if Frame.Plane.bit any b then
                  judge
                    (Frame.Plane.shot_of_transposed terr ~len:nq b)
                    (Frame.Plane.shot_of_transposed tsyn ~len:np b)
                    fail b
              done
            end
            else
              for b = 0 to live - 1 do
                if Frame.Plane.bit any b then
                  judge
                    (Frame.Plane.extract_shot_x plane ((64 * j) + b))
                    (Frame.Plane.row_shot_vec out ~lanes ~lane:j ~pos:0
                       ~len:np b)
                    fail b
              done
          end;
          !fail)
    | `Scalar ->
      Array.init lanes (fun j ->
          let live = min 64 (count - (64 * j)) in
          let fail = ref 0L in
          for b = 0 to live - 1 do
            let error = Frame.Plane.extract_shot_x plane ((64 * j) + b) in
            judge error (Lattice.syndrome lat error) fail b
          done;
          !fail)
  in
  let failures =
    Mc.Runner.failures ?domains ?obs ?campaign
      ~engine:(Mc.Engine.batch ~tile_width ())
      ~trials ~seed
      (Mc.Runner.model
         ~worker_init:(fun () ->
           ( Frame.Plane.create ~width:tile_width nq,
             Array.make (np * lanes) 0L,
             Array.make eb 0L,
             Array.make sb 0L ))
         ~batch ())
  in
  result ~l ~p ~trials failures

(* Rare-event fault model: one location per edge qubit, single kind
   (an X flip), firing probability p — the identical IID noise
   [trial_one] samples with [Bitvec.randomize], so the rare and plain
   engines estimate the same quantity. *)
let rare_model ?(decoder = `Union_find) ~l ~p () =
  let lat = Lattice.create l in
  let nq = Lattice.num_qubits lat in
  let fault_model = { Mc.Subset.locations = nq; kinds = 1; p } in
  let evaluate error faults =
    Bitvec.clear error;
    Array.iter (fun f -> Bitvec.set error f.Mc.Subset.loc true) faults;
    let syndrome = Lattice.syndrome lat error in
    let correction =
      match decoder with
      | `Union_find -> Decoder.decode lat syndrome
      | `Greedy -> Decoder.greedy_decode lat syndrome
    in
    let residual = Bitvec.xor error correction in
    let wx, wy = Lattice.winding lat residual in
    wx || wy
  in
  Mc.Runner.model
    ~worker_init:(fun () -> Bitvec.create nq)
    ~rare:{ Mc.Runner.fault_model; evaluate }
    ()

let run_rare ?domains ?chunk ?obs ?campaign ?z ?config ?decoder ~l ~p ~seed ()
    =
  Mc.Runner.estimate_rare ?domains ?chunk ?obs ?campaign ?z ?config ~seed
    (rare_model ?decoder ~l ~p ())

let scan ?(decoder = `Union_find) ~ls ~ps ~trials rng =
  List.concat_map
    (fun l -> List.map (fun p -> run ~decoder ~l ~p ~trials rng) ps)
    ls

let scan_mc ?domains ?obs ?(decoder = `Union_find) ~ls ~ps ~trials ~seed () =
  List.concat_map
    (fun l ->
      List.mapi
        (fun i p ->
          run_mc ?domains ?obs ~decoder ~l ~p ~trials
            ~seed:(Mc.Rng.derive seed [ l; i ])
            ())
        ps)
    ls
