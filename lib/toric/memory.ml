module Bitvec = Gf2.Bitvec

type result = { l : int; p : float; trials : int; failures : int; rate : float }

(* One trial: sample IID X noise into [error] (fully overwritten),
   decode, judge the residual's homology class.  [lat] is immutable
   after creation and [Decoder] allocates its own scratch, so one
   lattice is safely shared across domains. *)
let trial_one lat ~decoder ~p error rng =
  Bitvec.randomize ~p rng error;
  let syndrome = Lattice.syndrome lat error in
  let correction =
    match decoder with
    | `Union_find -> Decoder.decode lat syndrome
    | `Greedy -> Decoder.greedy_decode lat syndrome
  in
  let residual = Bitvec.xor error correction in
  (* sanity: the residual must have trivial syndrome *)
  assert (Bitvec.is_zero (Lattice.syndrome lat residual));
  let wx, wy = Lattice.winding lat residual in
  wx || wy

let result ~l ~p ~trials failures =
  { l; p; trials; failures; rate = float_of_int failures /. float_of_int trials }

let run ?(decoder = `Union_find) ~l ~p ~trials rng =
  let lat = Lattice.create l in
  let error = Bitvec.create (Lattice.num_qubits lat) in
  let failures = ref 0 in
  for _ = 1 to trials do
    if trial_one lat ~decoder ~p error rng then incr failures
  done;
  result ~l ~p ~trials !failures

let run_mc ?domains ?(decoder = `Union_find) ~l ~p ~trials ~seed () =
  let lat = Lattice.create l in
  let failures =
    Mc.Runner.failures_ctx ?domains ~trials ~seed
      ~worker_init:(fun () -> Bitvec.create (Lattice.num_qubits lat))
      (fun error rng _ -> trial_one lat ~decoder ~p error rng)
  in
  result ~l ~p ~trials failures

let scan ?(decoder = `Union_find) ~ls ~ps ~trials rng =
  List.concat_map
    (fun l -> List.map (fun p -> run ~decoder ~l ~p ~trials rng) ps)
    ls

let scan_mc ?domains ?(decoder = `Union_find) ~ls ~ps ~trials ~seed () =
  List.concat_map
    (fun l ->
      List.mapi
        (fun i p ->
          run_mc ?domains ~decoder ~l ~p ~trials
            ~seed:(Mc.Rng.derive seed [ l; i ])
            ())
        ps)
    ls
