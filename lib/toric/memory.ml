module Bitvec = Gf2.Bitvec

type result = { l : int; p : float; trials : int; failures : int; rate : float }

let run ?(decoder = `Union_find) ~l ~p ~trials rng =
  let lat = Lattice.create l in
  let n = Lattice.num_qubits lat in
  let failures = ref 0 in
  let error = Bitvec.create n in
  for _ = 1 to trials do
    Bitvec.randomize ~p rng error;
    let syndrome = Lattice.syndrome lat error in
    let correction =
      match decoder with
      | `Union_find -> Decoder.decode lat syndrome
      | `Greedy -> Decoder.greedy_decode lat syndrome
    in
    let residual = Bitvec.xor error correction in
    (* sanity: the residual must have trivial syndrome *)
    assert (Bitvec.is_zero (Lattice.syndrome lat residual));
    let wx, wy = Lattice.winding lat residual in
    if wx || wy then incr failures
  done;
  { l;
    p;
    trials;
    failures = !failures;
    rate = float_of_int !failures /. float_of_int trials }

let scan ?(decoder = `Union_find) ~ls ~ps ~trials rng =
  List.concat_map
    (fun l -> List.map (fun p -> run ~decoder ~l ~p ~trials rng) ps)
    ls
