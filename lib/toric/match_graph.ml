type t = {
  n : int;
  mutable edges : (int * int) array;
  mutable n_edges : int;
  mutable incident : int list array; (* node -> incident edge ids *)
}

let create ~num_nodes =
  { n = num_nodes;
    edges = Array.make 16 (0, 0);
    n_edges = 0;
    incident = Array.make num_nodes [] }

let num_nodes g = g.n
let num_edges g = g.n_edges

let add_edge g a b =
  if a < 0 || a >= g.n || b < 0 || b >= g.n || a = b then
    invalid_arg "Match_graph.add_edge";
  if g.n_edges = Array.length g.edges then begin
    let bigger = Array.make (2 * g.n_edges) (0, 0) in
    Array.blit g.edges 0 bigger 0 g.n_edges;
    g.edges <- bigger
  end;
  let id = g.n_edges in
  g.edges.(id) <- (a, b);
  g.n_edges <- id + 1;
  g.incident.(a) <- id :: g.incident.(a);
  g.incident.(b) <- id :: g.incident.(b);
  id

let endpoints g e = g.edges.(e)

(* --- union-find with parity and boundary lists --------------------- *)

type uf = {
  parent : int array;
  rank : int array;
  parity : bool array;
  boundary : int list array;
}

let rec find u i =
  if u.parent.(i) = i then i
  else begin
    let r = find u u.parent.(i) in
    u.parent.(i) <- r;
    r
  end

let union u a b =
  let ra = find u a and rb = find u b in
  if ra = rb then ra
  else begin
    let big, small = if u.rank.(ra) >= u.rank.(rb) then (ra, rb) else (rb, ra) in
    u.parent.(small) <- big;
    if u.rank.(big) = u.rank.(small) then u.rank.(big) <- u.rank.(big) + 1;
    u.parity.(big) <- u.parity.(big) <> u.parity.(small);
    u.boundary.(big) <- List.rev_append u.boundary.(small) u.boundary.(big);
    u.boundary.(small) <- [];
    big
  end

let decode g ~defects =
  if Array.length defects <> g.n then invalid_arg "Match_graph.decode";
  let u =
    { parent = Array.init g.n Fun.id;
      rank = Array.make g.n 0;
      parity = Array.copy defects;
      boundary = Array.copy g.incident }
  in
  let growth = Array.make g.n_edges 0 in
  let erasure = Array.make g.n_edges false in
  let progressed = ref true in
  let rec grow_round () =
    let odd_roots = ref [] in
    for i = 0 to g.n - 1 do
      if find u i = i && u.parity.(i) then odd_roots := i :: !odd_roots
    done;
    match !odd_roots with
    | [] -> ()
    | roots ->
      if not !progressed then
        invalid_arg "Match_graph.decode: odd defect parity in a component";
      progressed := false;
      List.iter
        (fun r ->
          let r = find u r in
          if u.parity.(r) then begin
            let edges = u.boundary.(r) in
            u.boundary.(r) <- [];
            let keep = ref [] in
            List.iter
              (fun e ->
                if growth.(e) < 2 then begin
                  progressed := true;
                  growth.(e) <- growth.(e) + 1;
                  if growth.(e) = 2 then begin
                    erasure.(e) <- true;
                    let a, b = g.edges.(e) in
                    ignore (union u a b)
                  end
                  else keep := e :: !keep
                end)
              edges;
            let r' = find u r in
            u.boundary.(r') <- List.rev_append !keep u.boundary.(r')
          end)
        roots;
      grow_round ()
  in
  grow_round ();
  (* peeling on the erasure: spanning forest, leaves first *)
  let adj = Array.make g.n [] in
  for e = 0 to g.n_edges - 1 do
    if erasure.(e) then begin
      let a, b = g.edges.(e) in
      adj.(a) <- (e, b) :: adj.(a);
      adj.(b) <- (e, a) :: adj.(b)
    end
  done;
  let visited = Array.make g.n false in
  let parent_edge = Array.make g.n (-1) in
  let parent_node = Array.make g.n (-1) in
  let order = ref [] in
  for start = 0 to g.n - 1 do
    if (not visited.(start)) && adj.(start) <> [] then begin
      let stack = Stack.create () in
      Stack.push start stack;
      visited.(start) <- true;
      let component = ref [] in
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        component := v :: !component;
        List.iter
          (fun (e, w) ->
            if not visited.(w) then begin
              visited.(w) <- true;
              parent_edge.(w) <- e;
              parent_node.(w) <- v;
              Stack.push w stack
            end)
          adj.(v)
      done;
      (* reversed pop order puts children before parents *)
      order := !component @ !order
    end
  done;
  let defect = Array.copy defects in
  let selected = Array.make g.n_edges false in
  List.iter
    (fun v ->
      if parent_edge.(v) >= 0 && defect.(v) then begin
        selected.(parent_edge.(v)) <- true;
        defect.(v) <- false;
        let p = parent_node.(v) in
        defect.(p) <- not defect.(p)
      end)
    !order;
  selected
