(** The L×L toric-code lattice (§7, Fig. 17): qubits on edges, Z-type
    check operators on plaquettes, X-type checks on vertices.

    Coordinates are periodic.  Qubit indexing: horizontal edge
    h(x, y) = [2·(y·L + x)], vertical edge v(x, y) = [2·(y·L + x) + 1],
    so there are 2L² qubits.  Plaquette (x, y) is bounded by h(x, y),
    h(x, y+1), v(x, y) and v(x+1, y); the two plaquettes adjacent to
    an edge are its syndrome-graph endpoints for X-error decoding.
    (Vertex checks are the mirror image; by the code's X↔Z symmetry
    the decoder layer only ever works with plaquettes.) *)

type t

(** [create l] — an L×L torus (l ≥ 2). *)
val create : int -> t

val size : t -> int

(** [num_qubits t] = 2L². *)
val num_qubits : t -> int

(** [num_plaquettes t] = L². *)
val num_plaquettes : t -> int

val h_edge : t -> x:int -> y:int -> int
val v_edge : t -> x:int -> y:int -> int
val plaquette_index : t -> x:int -> y:int -> int

(** [plaquette_edges t ~x ~y] — the 4 qubits of plaquette (x,y). *)
val plaquette_edges : t -> x:int -> y:int -> int list

(** [vertex_edges t ~x ~y] — the 4 qubits meeting vertex (x,y). *)
val vertex_edges : t -> x:int -> y:int -> int list

(** [edge_endpoints t e] — the two plaquettes an edge separates (as
    plaquette indices), for building the X-error syndrome graph. *)
val edge_endpoints : t -> int -> int * int

(** [syndrome t error] — plaquette parity vector of an X-error edge
    set. *)
val syndrome : t -> Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [winding t error] — (parity of v(0,·) edges, parity of h(·,0)
    edges): the two homology coordinates of a trivial-syndrome edge
    set; (false,false) = contractible = stabilizer element. *)
val winding : t -> Gf2.Bitvec.t -> bool * bool

(** [logical_x1 t] / [logical_x2 t] — representative noncontractible
    loops (edge sets) winding the torus in the two directions. *)
val logical_x1 : t -> Gf2.Bitvec.t

val logical_x2 : t -> Gf2.Bitvec.t
