(** Toric-code memory with *noisy syndrome measurements* — the §7
    regime where the medium is operated at finite temperature and the
    error diagnosis itself is unreliable.

    Errors accumulate over [rounds] measurement rounds: each round,
    every qubit flips with probability [p] and every reported
    plaquette bit is wrong with probability [q]; a final perfect round
    closes the history (the standard memory-experiment convention).
    Decoding matches *detection events* (differences between
    consecutive syndrome records) in the space-time graph: spatial
    edges are qubit errors, vertical edges are measurement errors.
    The threshold drops from ≈10% (perfect measurement) to a few
    percent — the price of fault tolerance when even looking at the
    system is noisy. *)

type result = {
  l : int;
  rounds : int;
  p : float;
  q : float;
  trials : int;
  failures : int;
  rate : float;
}

(** [run ~l ~rounds ~p ~q ~trials rng]. *)
val run :
  l:int ->
  rounds:int ->
  p:float ->
  q:float ->
  trials:int ->
  Random.State.t ->
  result

(** [run_mc ?domains ?obs ~l ~rounds ~p ~q ~trials ~seed ()] — the
    same experiment on the shared {!Mc.Runner} engine: the space-time
    graph is built once and shared read-only across OCaml 5 domains;
    failure counts are bit-identical for any [domains].  [?obs]
    (default {!Obs.none}) forwards runner telemetry without perturbing
    results; likewise below. *)
val run_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  l:int ->
  rounds:int ->
  p:float ->
  q:float ->
  trials:int ->
  seed:int ->
  unit ->
  result

(** [run_batch ?domains ?engine ?tile_width ~l ~rounds ~p ~q ~trials
    ~seed ()] — the bit-sliced engine: per round, qubit-flip and
    measurement-flip tiles ([tile_width / 64] words, default 64) are
    sampled word-wise and turned into space-time defect tiles; per
    lane, shots with no detection events skip the matcher entirely
    (word-parallel winding), the rest have their error planes
    block-transposed out tile-at-a-time and are matched per shot.
    [`Batch] and [`Scalar] share the identical sampled noise, so
    counts are bit-identical — across engines, domain counts and tile
    widths; see {!Memory.run_batch}. *)
val run_batch :
  ?domains:int ->
  ?obs:Obs.t ->
  ?engine:[ `Batch | `Scalar ] ->
  ?tile_width:int ->
  l:int ->
  rounds:int ->
  p:float ->
  q:float ->
  trials:int ->
  seed:int ->
  unit ->
  result

(** [scan ~ls ~ps ~rounds ~trials rng] — grid with q = p (the usual
    phenomenological convention). *)
val scan :
  ls:int list ->
  ps:float list ->
  rounds:int ->
  trials:int ->
  Random.State.t ->
  result list

(** [scan_mc] — parallel grid; each (l, p) cell gets its own derived
    seed, so cells are independent of grid shape and order. *)
val scan_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  ls:int list ->
  ps:float list ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  result list
