(** Union-find decoder for the toric code (Delfosse–Nickerson style),
    with peeling for the final pairing.

    Given the plaquette syndrome of an X-error pattern, clusters are
    grown half-an-edge at a time around the defects; clusters merge
    through fully grown edges (weighted union-find) until every
    cluster contains an even number of defects.  The fully grown edge
    set is then treated as an erasure and decoded by peeling a
    spanning forest.  Almost-linear time; threshold ≈ 9.9% for IID
    X noise, comfortably demonstrating §7's "intrinsically
    fault-tolerant" phase. *)

(** [decode lattice syndrome] — an X-correction (edge set) whose
    syndrome equals [syndrome]. *)
val decode : Lattice.t -> Gf2.Bitvec.t -> Gf2.Bitvec.t

(** [greedy_decode lattice syndrome] — baseline ablation: repeatedly
    pair the two closest defects by torus Manhattan distance and
    connect them along a geodesic.  Simpler, lower threshold. *)
val greedy_decode : Lattice.t -> Gf2.Bitvec.t -> Gf2.Bitvec.t
