(** Toric-code memory Monte Carlo (E10): IID X noise of strength p on
    every edge, one round of perfect syndrome measurement, decoding,
    and a homology-class check of the residual.  Below threshold the
    logical failure rate falls with lattice size; above it rises —
    the phase transition behind §7's intrinsically fault-tolerant
    hardware.  (Z noise is the exact mirror image under lattice
    duality, so only the X sector is simulated.) *)

type result = { l : int; p : float; trials : int; failures : int; rate : float }

(** [run ?decoder ~l ~p ~trials rng] — [decoder] is [`Union_find]
    (default) or [`Greedy]. *)
val run :
  ?decoder:[ `Union_find | `Greedy ] ->
  l:int ->
  p:float ->
  trials:int ->
  Random.State.t ->
  result

(** [run_mc ?domains ?obs ?decoder ~l ~p ~trials ~seed ()] — the same
    experiment on the shared {!Mc.Runner} engine: trials fan out over
    OCaml 5 domains, failure counts are bit-identical for any
    [domains].  [?obs] (default {!Obs.none}) forwards to the runner
    for telemetry without perturbing results; likewise below. *)
val run_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  ?decoder:[ `Union_find | `Greedy ] ->
  l:int ->
  p:float ->
  trials:int ->
  seed:int ->
  unit ->
  result

(** [run_batch ?domains ?engine ?decoder ?tile_width ~l ~p ~trials
    ~seed ()] — the bit-sliced engine: 64 shots per word,
    [tile_width / 64] words per tile (default 64; 256/512 are the
    tuned widths), word-wise noise sampling and plaquette syndromes
    ({!Frame}).  An early parity-based clean/defect split judges
    defect-free shots by word-parallel winding; defect shots are
    extracted tile-at-a-time through a 64x64 block transpose and
    decoded per shot.  [`Batch] (default) and [`Scalar] see the
    identical sampled noise (same {!Frame.Sampler} call sequence), so
    their failure counts are bit-identical — across engines, domain
    counts and tile widths; [`Scalar] re-runs the existing per-shot
    pipeline as the cross-check / baseline.  The legacy
    [run]/[run_mc] use per-shot [Random.State] sampling and keep
    their historical counts.  [?campaign] threads a checkpoint ledger
    through to {!Mc.Runner.failures}: completed tiles are journaled
    (chunk size = [tile_width]) and skipped on resume. *)
val run_batch :
  ?domains:int ->
  ?obs:Obs.t ->
  ?campaign:Mc.Campaign.t ->
  ?engine:[ `Batch | `Scalar ] ->
  ?decoder:[ `Union_find | `Greedy ] ->
  ?tile_width:int ->
  l:int ->
  p:float ->
  trials:int ->
  seed:int ->
  unit ->
  result

(** [rare_model ?decoder ~l ~p ()] — the same experiment as an
    explicit fault model for the rare-event engine: one location per
    edge qubit, one kind (an X flip), firing probability [p] — the
    identical IID distribution [run]/[run_mc] sample, so rare and
    plain estimates cross-validate on the same model. *)
val rare_model :
  ?decoder:[ `Union_find | `Greedy ] ->
  l:int ->
  p:float ->
  unit ->
  Gf2.Bitvec.t Mc.Runner.model

(** [run_rare ?config ~l ~p ~seed ()] — weight-class subset estimate
    ({!Mc.Runner.estimate_rare}): exact enumeration of low-weight
    error patterns with analytic binomial prefactors, reaching
    deep-subthreshold failure rates no shot budget can. *)
val run_rare :
  ?domains:int ->
  ?chunk:int ->
  ?obs:Obs.t ->
  ?campaign:Mc.Campaign.t ->
  ?z:float ->
  ?config:Mc.Engine.rare ->
  ?decoder:[ `Union_find | `Greedy ] ->
  l:int ->
  p:float ->
  seed:int ->
  unit ->
  Mc.Stats.weighted

(** [scan ?decoder ~ls ~ps ~trials rng] — full grid of results. *)
val scan :
  ?decoder:[ `Union_find | `Greedy ] ->
  ls:int list ->
  ps:float list ->
  trials:int ->
  Random.State.t ->
  result list

(** [scan_mc] — parallel grid; each (l, p) cell gets its own derived
    seed, so cells are independent of grid shape and order. *)
val scan_mc :
  ?domains:int ->
  ?obs:Obs.t ->
  ?decoder:[ `Union_find | `Greedy ] ->
  ls:int list ->
  ps:float list ->
  trials:int ->
  seed:int ->
  unit ->
  result list
