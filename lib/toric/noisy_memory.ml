module Bitvec = Gf2.Bitvec

type result = {
  l : int;
  rounds : int;
  p : float;
  q : float;
  trials : int;
  failures : int;
  rate : float;
}

(* Build the space-time matching graph once per (l, rounds): node
   (plaq, t) for t in 0..rounds-1; spatial edges replicate the lattice
   adjacency at each time slice, temporal edges link consecutive
   slices.  Edge ids are recorded so spatial corrections can be mapped
   back to qubits. *)
type graph = {
  g : Match_graph.t;
  spatial_qubit : (int, int) Hashtbl.t; (* edge id -> qubit *)
}

let build_graph lat ~rounds =
  let np = Lattice.num_plaquettes lat in
  let g = Match_graph.create ~num_nodes:(np * rounds) in
  let spatial_qubit = Hashtbl.create (Lattice.num_qubits lat * rounds) in
  for t = 0 to rounds - 1 do
    for e = 0 to Lattice.num_qubits lat - 1 do
      let a, b = Lattice.edge_endpoints lat e in
      let id = Match_graph.add_edge g ((t * np) + a) ((t * np) + b) in
      Hashtbl.add spatial_qubit id e
    done;
    if t < rounds - 1 then
      for plaq = 0 to np - 1 do
        ignore (Match_graph.add_edge g ((t * np) + plaq) (((t + 1) * np) + plaq))
      done
  done;
  { g; spatial_qubit }

(* One trial against a prebuilt space-time graph.  The graph and
   lattice are read-only here ([Match_graph.decode] copies what it
   mutates), so one build is safely shared across worker domains. *)
let trial_one lat graph ~rounds ~p ~q rng =
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  let error = Bitvec.create nq in
  let prev = Bitvec.create np in
  let defects = Array.make (np * rounds) false in
  let fresh = Bitvec.create nq in
  for t = 0 to rounds - 1 do
    (* new qubit errors this round *)
    Bitvec.randomize ~p rng fresh;
    Bitvec.xor_into ~src:fresh error;
    let sigma = Lattice.syndrome lat error in
    let observed = Bitvec.copy sigma in
    if t < rounds - 1 && q > 0.0 then
      for i = 0 to np - 1 do
        if Random.State.float rng 1.0 < q then Bitvec.flip observed i
      done;
    (* detection events = change since the previous record *)
    for i = 0 to np - 1 do
      if Bitvec.get observed i <> Bitvec.get prev i then
        defects.((t * np) + i) <- true
    done;
    Bitvec.blit ~src:observed prev
  done;
  let selected = Match_graph.decode graph.g ~defects in
  let correction = Bitvec.create nq in
  Array.iteri
    (fun id on ->
      if on then
        match Hashtbl.find_opt graph.spatial_qubit id with
        | Some qubit -> Bitvec.flip correction qubit
        | None -> () (* temporal edge: a diagnosed measurement error *))
    selected;
  let residual = Bitvec.xor error correction in
  assert (Bitvec.is_zero (Lattice.syndrome lat residual));
  let wx, wy = Lattice.winding lat residual in
  wx || wy

let run_with_graph lat graph ~rounds ~p ~q ~trials rng =
  let failures = ref 0 in
  for _ = 1 to trials do
    if trial_one lat graph ~rounds ~p ~q rng then incr failures
  done;
  !failures

let setup ~l ~rounds =
  if rounds < 2 then invalid_arg "Noisy_memory.run: need >= 2 rounds";
  let lat = Lattice.create l in
  (lat, build_graph lat ~rounds)

let result ~l ~rounds ~p ~q ~trials failures =
  { l;
    rounds;
    p;
    q;
    trials;
    failures;
    rate = float_of_int failures /. float_of_int trials }

let run ~l ~rounds ~p ~q ~trials rng =
  let lat, graph = setup ~l ~rounds in
  let failures = run_with_graph lat graph ~rounds ~p ~q ~trials rng in
  result ~l ~rounds ~p ~q ~trials failures

let run_mc ?domains ?obs ~l ~rounds ~p ~q ~trials ~seed () =
  let lat, graph = setup ~l ~rounds in
  let failures =
    Mc.Runner.failures ?domains ?obs ~trials ~seed
      (Mc.Runner.scalar (fun rng _ -> trial_one lat graph ~rounds ~p ~q rng))
  in
  result ~l ~rounds ~p ~q ~trials failures

(* Bit-sliced batch engine, [tile_width / 64] words per tile.  The
   sampling and space-time-defect phase is word-wise and shared
   verbatim by both engines (same sampler call sequence, so identical
   noise); decoding falls back per shot.  Per lane, shots with no
   detection events anywhere skip the matcher and are judged by
   word-parallel winding; the defect shots' final error planes are
   extracted tile-at-a-time through a 64x64 block transpose.  All
   word buffers are row-major: row [i]'s lane [j] at [i * lanes + j]. *)
type batch_ctx = {
  plane : Frame.Plane.t;
  out : int64 array;     (* np rows: one round's syndrome tiles *)
  mw : int64 array;      (* np*rounds rows: measurement-flip tiles *)
  dw : int64 array;      (* np*rounds rows: defect tiles *)
  prev : int64 array;    (* np rows: previous round's observed syndrome *)
  acc : int64 array;     (* nq*rounds rows: accumulated-error snapshots *)
  defects : bool array;  (* np*rounds: one shot's defect pattern *)
  terr : int64 array;    (* transposed error plane, one lane *)
}

let correction_of_selected graph ~nq selected =
  let correction = Bitvec.create nq in
  Array.iteri
    (fun id on ->
      if on then
        match Hashtbl.find_opt graph.spatial_qubit id with
        | Some qubit -> Bitvec.flip correction qubit
        | None -> () (* temporal edge: a diagnosed measurement error *))
    selected;
  correction

(* As in Memory: lanes with at least this many defect shots extract
   their error planes through the block transpose. *)
let transpose_threshold = 3

let run_batch ?domains ?obs ?(engine = `Batch) ?(tile_width = 64) ~l ~rounds
    ~p ~q ~trials ~seed () =
  let lat, graph = setup ~l ~rounds in
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  if tile_width < 64 || tile_width mod 64 <> 0 then
    invalid_arg "Toric.Noisy_memory: tile_width must be a positive multiple of 64";
  let lanes = tile_width / 64 in
  let qubits = Array.init nq Fun.id in
  let checks =
    Array.init np (fun idx ->
        let x = idx mod l and y = idx / l in
        {
          Frame.Program.x_sel =
            Array.of_list (Lattice.plaquette_edges lat ~x ~y);
          z_sel = [||];
        })
  in
  let round_prog =
    Frame.Program.make ~n:nq
      [ Frame.Program.Flip_x { qubits; p }; Frame.Program.Extract checks ]
  in
  let qplan = Frame.Sampler.plan q in
  let wx_sel = Array.init l (fun y -> Lattice.v_edge lat ~x:0 ~y) in
  let wy_sel = Array.init l (fun x -> Lattice.h_edge lat ~x ~y:0) in
  let judge error correction fail b =
    let residual = Bitvec.xor error correction in
    let wx, wy = Lattice.winding lat residual in
    if wx || wy then fail := Int64.logor !fail (Int64.shift_left 1L b)
  in
  let match_shot ctx ~lane b =
    for r = 0 to (np * rounds) - 1 do
      ctx.defects.(r) <- Frame.Plane.bit ctx.dw.((r * lanes) + lane) b
    done;
    let selected = Match_graph.decode graph.g ~defects:ctx.defects in
    correction_of_selected graph ~nq selected
  in
  let batch ctx keys ~base:_ ~count =
    let sampler = Frame.Sampler.create_tile keys in
    Frame.Plane.clear ctx.plane;
    Array.fill ctx.prev 0 (np * lanes) 0L;
    for t = 0 to rounds - 1 do
      Frame.Program.run_into round_prog sampler ctx.plane ctx.out;
      Frame.Plane.blit_x ctx.plane ctx.acc (t * nq * lanes);
      for i = 0 to np - 1 do
        let row = i * lanes in
        if t < rounds - 1 && q > 0.0 then
          Frame.Sampler.bernoulli_plan_into sampler qplan ctx.mw
            (((t * np) + i) * lanes)
        else Array.fill ctx.mw (((t * np) + i) * lanes) lanes 0L;
        for j = 0 to lanes - 1 do
          let m = ctx.mw.((((t * np) + i) * lanes) + j) in
          let observed = Int64.logxor ctx.out.(row + j) m in
          ctx.dw.((((t * np) + i) * lanes) + j) <-
            Int64.logxor observed ctx.prev.(row + j);
          ctx.prev.(row + j) <- observed
        done
      done
    done;
    match engine with
    | `Batch ->
      Array.init lanes (fun j ->
          let live = min 64 (count - (64 * j)) in
          let any = ref 0L in
          for r = 0 to (np * rounds) - 1 do
            any := Int64.logor !any ctx.dw.((r * lanes) + j)
          done;
          let clean_winding =
            Int64.logor
              (Frame.Plane.parity_x ~lane:j ctx.plane wx_sel)
              (Frame.Plane.parity_x ~lane:j ctx.plane wy_sel)
          in
          let any = !any in
          let fail = ref (Int64.logand clean_winding (Int64.lognot any)) in
          if any <> 0L then begin
            let nd =
              Mc.Runner.popcount64
                (Int64.logand any (Mc.Runner.live_mask (max live 0)))
            in
            let transposed = nd >= transpose_threshold in
            if transposed then Frame.Plane.transpose_x ctx.plane ~lane:j ctx.terr;
            for b = 0 to live - 1 do
              if Frame.Plane.bit any b then begin
                let correction = match_shot ctx ~lane:j b in
                let error =
                  if transposed then
                    Frame.Plane.shot_of_transposed ctx.terr ~len:nq b
                  else Frame.Plane.extract_shot_x ctx.plane ((64 * j) + b)
                in
                judge error correction fail b
              end
            done
          end;
          !fail)
    | `Scalar ->
      (* re-run the existing per-shot pipeline on the per-round
         snapshots of the same sampled noise *)
      Array.init lanes (fun j ->
          let live = min 64 (count - (64 * j)) in
          let fail = ref 0L in
          for b = 0 to live - 1 do
            let prev_b = Bitvec.create np in
            Array.fill ctx.defects 0 (np * rounds) false;
            for t = 0 to rounds - 1 do
              let error_t =
                Frame.Plane.row_shot_vec ctx.acc ~lanes ~lane:j ~pos:(t * nq)
                  ~len:nq b
              in
              let observed = Bitvec.copy (Lattice.syndrome lat error_t) in
              for i = 0 to np - 1 do
                if Frame.Plane.bit ctx.mw.((((t * np) + i) * lanes) + j) b then
                  Bitvec.flip observed i
              done;
              for i = 0 to np - 1 do
                if Bitvec.get observed i <> Bitvec.get prev_b i then
                  ctx.defects.((t * np) + i) <- true
              done;
              Bitvec.blit ~src:observed prev_b
            done;
            let selected = Match_graph.decode graph.g ~defects:ctx.defects in
            let correction = correction_of_selected graph ~nq selected in
            let error =
              Frame.Plane.row_shot_vec ctx.acc ~lanes ~lane:j
                ~pos:((rounds - 1) * nq) ~len:nq b
            in
            let residual = Bitvec.xor error correction in
            assert (Bitvec.is_zero (Lattice.syndrome lat residual));
            let wx, wy = Lattice.winding lat residual in
            if wx || wy then fail := Int64.logor !fail (Int64.shift_left 1L b)
          done;
          !fail)
  in
  let failures =
    Mc.Runner.failures ?domains ?obs
      ~engine:(Mc.Engine.batch ~tile_width ())
      ~trials ~seed
      (Mc.Runner.model
         ~worker_init:(fun () ->
           {
             plane = Frame.Plane.create ~width:tile_width nq;
             out = Array.make (np * lanes) 0L;
             mw = Array.make (np * rounds * lanes) 0L;
             dw = Array.make (np * rounds * lanes) 0L;
             prev = Array.make (np * lanes) 0L;
             acc = Array.make (nq * rounds * lanes) 0L;
             defects = Array.make (np * rounds) false;
             terr = Array.make ((nq + 63) / 64 * 64) 0L;
           })
         ~batch ())
  in
  result ~l ~rounds ~p ~q ~trials failures

let scan ~ls ~ps ~rounds ~trials rng =
  List.concat_map
    (fun l -> List.map (fun p -> run ~l ~rounds ~p ~q:p ~trials rng) ps)
    ls

let scan_mc ?domains ?obs ~ls ~ps ~rounds ~trials ~seed () =
  List.concat_map
    (fun l ->
      List.mapi
        (fun i p ->
          run_mc ?domains ?obs ~l ~rounds ~p ~q:p ~trials
            ~seed:(Mc.Rng.derive seed [ l; i ])
            ())
        ps)
    ls
