module Bitvec = Gf2.Bitvec

type result = {
  l : int;
  rounds : int;
  p : float;
  q : float;
  trials : int;
  failures : int;
  rate : float;
}

(* Build the space-time matching graph once per (l, rounds): node
   (plaq, t) for t in 0..rounds-1; spatial edges replicate the lattice
   adjacency at each time slice, temporal edges link consecutive
   slices.  Edge ids are recorded so spatial corrections can be mapped
   back to qubits. *)
type graph = {
  g : Match_graph.t;
  spatial_qubit : (int, int) Hashtbl.t; (* edge id -> qubit *)
}

let build_graph lat ~rounds =
  let np = Lattice.num_plaquettes lat in
  let g = Match_graph.create ~num_nodes:(np * rounds) in
  let spatial_qubit = Hashtbl.create (Lattice.num_qubits lat * rounds) in
  for t = 0 to rounds - 1 do
    for e = 0 to Lattice.num_qubits lat - 1 do
      let a, b = Lattice.edge_endpoints lat e in
      let id = Match_graph.add_edge g ((t * np) + a) ((t * np) + b) in
      Hashtbl.add spatial_qubit id e
    done;
    if t < rounds - 1 then
      for plaq = 0 to np - 1 do
        ignore (Match_graph.add_edge g ((t * np) + plaq) (((t + 1) * np) + plaq))
      done
  done;
  { g; spatial_qubit }

(* One trial against a prebuilt space-time graph.  The graph and
   lattice are read-only here ([Match_graph.decode] copies what it
   mutates), so one build is safely shared across worker domains. *)
let trial_one lat graph ~rounds ~p ~q rng =
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  let error = Bitvec.create nq in
  let prev = Bitvec.create np in
  let defects = Array.make (np * rounds) false in
  let fresh = Bitvec.create nq in
  for t = 0 to rounds - 1 do
    (* new qubit errors this round *)
    Bitvec.randomize ~p rng fresh;
    Bitvec.xor_into ~src:fresh error;
    let sigma = Lattice.syndrome lat error in
    let observed = Bitvec.copy sigma in
    if t < rounds - 1 && q > 0.0 then
      for i = 0 to np - 1 do
        if Random.State.float rng 1.0 < q then Bitvec.flip observed i
      done;
    (* detection events = change since the previous record *)
    for i = 0 to np - 1 do
      if Bitvec.get observed i <> Bitvec.get prev i then
        defects.((t * np) + i) <- true
    done;
    Bitvec.blit ~src:observed prev
  done;
  let selected = Match_graph.decode graph.g ~defects in
  let correction = Bitvec.create nq in
  Array.iteri
    (fun id on ->
      if on then
        match Hashtbl.find_opt graph.spatial_qubit id with
        | Some qubit -> Bitvec.flip correction qubit
        | None -> () (* temporal edge: a diagnosed measurement error *))
    selected;
  let residual = Bitvec.xor error correction in
  assert (Bitvec.is_zero (Lattice.syndrome lat residual));
  let wx, wy = Lattice.winding lat residual in
  wx || wy

let run_with_graph lat graph ~rounds ~p ~q ~trials rng =
  let failures = ref 0 in
  for _ = 1 to trials do
    if trial_one lat graph ~rounds ~p ~q rng then incr failures
  done;
  !failures

let setup ~l ~rounds =
  if rounds < 2 then invalid_arg "Noisy_memory.run: need >= 2 rounds";
  let lat = Lattice.create l in
  (lat, build_graph lat ~rounds)

let result ~l ~rounds ~p ~q ~trials failures =
  { l;
    rounds;
    p;
    q;
    trials;
    failures;
    rate = float_of_int failures /. float_of_int trials }

let run ~l ~rounds ~p ~q ~trials rng =
  let lat, graph = setup ~l ~rounds in
  let failures = run_with_graph lat graph ~rounds ~p ~q ~trials rng in
  result ~l ~rounds ~p ~q ~trials failures

let run_mc ?domains ?obs ~l ~rounds ~p ~q ~trials ~seed () =
  let lat, graph = setup ~l ~rounds in
  let failures =
    Mc.Runner.failures ?domains ?obs ~trials ~seed (fun rng _ ->
        trial_one lat graph ~rounds ~p ~q rng)
  in
  result ~l ~rounds ~p ~q ~trials failures

(* Bit-sliced batch engine.  The sampling and space-time-defect phase
   is word-wise and shared verbatim by both engines (same sampler call
   sequence, so identical noise); decoding falls back per shot.
   Shots with no detection events anywhere skip the matcher and are
   judged by word-parallel winding. *)
type batch_ctx = {
  plane : Frame.Plane.t;
  out : int64 array;     (* np: one round's syndrome words *)
  mw : int64 array;      (* np*rounds: measurement-flip words *)
  dw : int64 array;      (* np*rounds: defect words *)
  prev : int64 array;    (* np: previous round's observed syndrome *)
  acc : int64 array;     (* nq*rounds: accumulated-error snapshots *)
  defects : bool array;  (* np*rounds: one shot's defect pattern *)
}

let correction_of_selected graph ~nq selected =
  let correction = Bitvec.create nq in
  Array.iteri
    (fun id on ->
      if on then
        match Hashtbl.find_opt graph.spatial_qubit id with
        | Some qubit -> Bitvec.flip correction qubit
        | None -> () (* temporal edge: a diagnosed measurement error *))
    selected;
  correction

let run_batch ?domains ?obs ?(engine = `Batch) ~l ~rounds ~p ~q ~trials ~seed
    () =
  let lat, graph = setup ~l ~rounds in
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  let qubits = Array.init nq Fun.id in
  let checks =
    Array.init np (fun idx ->
        let x = idx mod l and y = idx / l in
        {
          Frame.Program.x_sel =
            Array.of_list (Lattice.plaquette_edges lat ~x ~y);
          z_sel = [||];
        })
  in
  let round_prog =
    Frame.Program.make ~n:nq
      [ Frame.Program.Flip_x { qubits; p }; Frame.Program.Extract checks ]
  in
  let wx_sel = Array.init l (fun y -> Lattice.v_edge lat ~x:0 ~y) in
  let wy_sel = Array.init l (fun x -> Lattice.h_edge lat ~x ~y:0) in
  let batch ctx key ~base:_ ~count =
    let sampler = Frame.Sampler.create key in
    Frame.Plane.clear ctx.plane;
    Array.fill ctx.prev 0 np 0L;
    for t = 0 to rounds - 1 do
      Frame.Program.run_into round_prog sampler ctx.plane ctx.out;
      for e = 0 to nq - 1 do
        ctx.acc.((t * nq) + e) <- Frame.Plane.get_x ctx.plane e
      done;
      for i = 0 to np - 1 do
        let m =
          if t < rounds - 1 && q > 0.0 then Frame.Sampler.bernoulli sampler q
          else 0L
        in
        ctx.mw.((t * np) + i) <- m;
        let observed = Int64.logxor ctx.out.(i) m in
        ctx.dw.((t * np) + i) <- Int64.logxor observed ctx.prev.(i);
        ctx.prev.(i) <- observed
      done
    done;
    match engine with
    | `Batch ->
      let any = Array.fold_left Int64.logor 0L ctx.dw in
      let clean_winding =
        Int64.logor
          (Frame.Plane.parity_x ctx.plane wx_sel)
          (Frame.Plane.parity_x ctx.plane wy_sel)
      in
      let fail = ref (Int64.logand clean_winding (Int64.lognot any)) in
      for k = 0 to count - 1 do
        if Frame.Plane.bit any k then begin
          for j = 0 to (np * rounds) - 1 do
            ctx.defects.(j) <- Frame.Plane.bit ctx.dw.(j) k
          done;
          let selected = Match_graph.decode graph.g ~defects:ctx.defects in
          let correction = correction_of_selected graph ~nq selected in
          let error = Frame.Plane.extract_shot_x ctx.plane k in
          let residual = Bitvec.xor error correction in
          let wx, wy = Lattice.winding lat residual in
          if wx || wy then fail := Int64.logor !fail (Int64.shift_left 1L k)
        end
      done;
      !fail
    | `Scalar ->
      (* re-run the existing per-shot pipeline on the per-round
         snapshots of the same sampled noise *)
      let fail = ref 0L in
      for k = 0 to count - 1 do
        let prev_b = Bitvec.create np in
        Array.fill ctx.defects 0 (np * rounds) false;
        for t = 0 to rounds - 1 do
          let error_t = Frame.Plane.shot_vec (Array.sub ctx.acc (t * nq) nq) k in
          let observed = Bitvec.copy (Lattice.syndrome lat error_t) in
          for i = 0 to np - 1 do
            if Frame.Plane.bit ctx.mw.((t * np) + i) k then
              Bitvec.flip observed i
          done;
          for i = 0 to np - 1 do
            if Bitvec.get observed i <> Bitvec.get prev_b i then
              ctx.defects.((t * np) + i) <- true
          done;
          Bitvec.blit ~src:observed prev_b
        done;
        let selected = Match_graph.decode graph.g ~defects:ctx.defects in
        let correction = correction_of_selected graph ~nq selected in
        let error =
          Frame.Plane.shot_vec (Array.sub ctx.acc ((rounds - 1) * nq) nq) k
        in
        let residual = Bitvec.xor error correction in
        assert (Bitvec.is_zero (Lattice.syndrome lat residual));
        let wx, wy = Lattice.winding lat residual in
        if wx || wy then fail := Int64.logor !fail (Int64.shift_left 1L k)
      done;
      !fail
  in
  let failures =
    Mc.Runner.failures_batched ?domains ?obs ~trials ~seed
      ~worker_init:(fun () ->
        {
          plane = Frame.Plane.create nq;
          out = Array.make np 0L;
          mw = Array.make (np * rounds) 0L;
          dw = Array.make (np * rounds) 0L;
          prev = Array.make np 0L;
          acc = Array.make (nq * rounds) 0L;
          defects = Array.make (np * rounds) false;
        })
      batch
  in
  result ~l ~rounds ~p ~q ~trials failures

let scan ~ls ~ps ~rounds ~trials rng =
  List.concat_map
    (fun l -> List.map (fun p -> run ~l ~rounds ~p ~q:p ~trials rng) ps)
    ls

let scan_mc ?domains ?obs ~ls ~ps ~rounds ~trials ~seed () =
  List.concat_map
    (fun l ->
      List.mapi
        (fun i p ->
          run_mc ?domains ?obs ~l ~rounds ~p ~q:p ~trials
            ~seed:(Mc.Rng.derive seed [ l; i ])
            ())
        ps)
    ls
