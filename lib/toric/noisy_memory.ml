module Bitvec = Gf2.Bitvec

type result = {
  l : int;
  rounds : int;
  p : float;
  q : float;
  trials : int;
  failures : int;
  rate : float;
}

(* Build the space-time matching graph once per (l, rounds): node
   (plaq, t) for t in 0..rounds-1; spatial edges replicate the lattice
   adjacency at each time slice, temporal edges link consecutive
   slices.  Edge ids are recorded so spatial corrections can be mapped
   back to qubits. *)
type graph = {
  g : Match_graph.t;
  spatial_qubit : (int, int) Hashtbl.t; (* edge id -> qubit *)
}

let build_graph lat ~rounds =
  let np = Lattice.num_plaquettes lat in
  let g = Match_graph.create ~num_nodes:(np * rounds) in
  let spatial_qubit = Hashtbl.create (Lattice.num_qubits lat * rounds) in
  for t = 0 to rounds - 1 do
    for e = 0 to Lattice.num_qubits lat - 1 do
      let a, b = Lattice.edge_endpoints lat e in
      let id = Match_graph.add_edge g ((t * np) + a) ((t * np) + b) in
      Hashtbl.add spatial_qubit id e
    done;
    if t < rounds - 1 then
      for plaq = 0 to np - 1 do
        ignore (Match_graph.add_edge g ((t * np) + plaq) (((t + 1) * np) + plaq))
      done
  done;
  { g; spatial_qubit }

(* One trial against a prebuilt space-time graph.  The graph and
   lattice are read-only here ([Match_graph.decode] copies what it
   mutates), so one build is safely shared across worker domains. *)
let trial_one lat graph ~rounds ~p ~q rng =
  let nq = Lattice.num_qubits lat in
  let np = Lattice.num_plaquettes lat in
  let error = Bitvec.create nq in
  let prev = Bitvec.create np in
  let defects = Array.make (np * rounds) false in
  let fresh = Bitvec.create nq in
  for t = 0 to rounds - 1 do
    (* new qubit errors this round *)
    Bitvec.randomize ~p rng fresh;
    Bitvec.xor_into ~src:fresh error;
    let sigma = Lattice.syndrome lat error in
    let observed = Bitvec.copy sigma in
    if t < rounds - 1 && q > 0.0 then
      for i = 0 to np - 1 do
        if Random.State.float rng 1.0 < q then Bitvec.flip observed i
      done;
    (* detection events = change since the previous record *)
    for i = 0 to np - 1 do
      if Bitvec.get observed i <> Bitvec.get prev i then
        defects.((t * np) + i) <- true
    done;
    Bitvec.blit ~src:observed prev
  done;
  let selected = Match_graph.decode graph.g ~defects in
  let correction = Bitvec.create nq in
  Array.iteri
    (fun id on ->
      if on then
        match Hashtbl.find_opt graph.spatial_qubit id with
        | Some qubit -> Bitvec.flip correction qubit
        | None -> () (* temporal edge: a diagnosed measurement error *))
    selected;
  let residual = Bitvec.xor error correction in
  assert (Bitvec.is_zero (Lattice.syndrome lat residual));
  let wx, wy = Lattice.winding lat residual in
  wx || wy

let run_with_graph lat graph ~rounds ~p ~q ~trials rng =
  let failures = ref 0 in
  for _ = 1 to trials do
    if trial_one lat graph ~rounds ~p ~q rng then incr failures
  done;
  !failures

let setup ~l ~rounds =
  if rounds < 2 then invalid_arg "Noisy_memory.run: need >= 2 rounds";
  let lat = Lattice.create l in
  (lat, build_graph lat ~rounds)

let result ~l ~rounds ~p ~q ~trials failures =
  { l;
    rounds;
    p;
    q;
    trials;
    failures;
    rate = float_of_int failures /. float_of_int trials }

let run ~l ~rounds ~p ~q ~trials rng =
  let lat, graph = setup ~l ~rounds in
  let failures = run_with_graph lat graph ~rounds ~p ~q ~trials rng in
  result ~l ~rounds ~p ~q ~trials failures

let run_mc ?domains ~l ~rounds ~p ~q ~trials ~seed () =
  let lat, graph = setup ~l ~rounds in
  let failures =
    Mc.Runner.failures ?domains ~trials ~seed (fun rng _ ->
        trial_one lat graph ~rounds ~p ~q rng)
  in
  result ~l ~rounds ~p ~q ~trials failures

let scan ~ls ~ps ~rounds ~trials rng =
  List.concat_map
    (fun l -> List.map (fun p -> run ~l ~rounds ~p ~q:p ~trials rng) ps)
    ls

let scan_mc ?domains ~ls ~ps ~rounds ~trials ~seed () =
  List.concat_map
    (fun l ->
      List.mapi
        (fun i p ->
          run_mc ?domains ~l ~rounds ~p ~q:p ~trials
            ~seed:(Mc.Rng.derive seed [ l; i ])
            ())
        ps)
    ls
