(** Umbrella module: the full fault-tolerant quantum computation stack
    reproducing Preskill's "Fault-Tolerant Quantum Computation".

    Layering, bottom to top:
    - {!Obs}: telemetry — counters/gauges/timers/histograms merged
      per-worker, a structured-event sink, a dependency-free JSON
      encoder/parser, machine-readable experiment manifests, and the
      opt-in [FTQC_PROGRESS] reporter.
    - {!Mc}: the shared Monte-Carlo engine — splittable deterministic
      RNG streams, a parallel (OCaml 5 domains) map-reduce runner with
      domain-count-invariant results, Wilson-interval estimators —
      instrumented behind an {!Obs.t} handle.
    - {!Gf2}: GF(2) linear algebra (bit vectors, matrices).
    - {!Qmath}: complex scalars, dense matrices, standard gates.
    - {!Group}: finite permutation groups (A₅ and friends, §7.4).
    - {!Pauli}: n-qubit Pauli operators (symplectic form).
    - {!Circuit}: the gate/measurement IR.
    - {!Statevec}: exact state-vector simulation (≤ ~20 qubits).
    - {!Tableau}: stabilizer (Aaronson–Gottesman) simulation.
    - {!Frame}: bit-sliced Pauli-frame batch engine — 64 Monte-Carlo
      shots per machine word, word-sampled noise, compiled frame
      programs (the fast path behind the [_batch] drivers).
    - {!Codes}: Hamming, Steane, Shor-9, 5-qubit, CSS, concatenation.
    - {!Csskit}: the generic CSS pipeline — parity-check matrices in;
      validated construction, distance probe, decoder, word-wise
      batch classifier and memory estimators out — plus the
      cyclic/BCH code zoo ([steane7], [golay23], [bch15], [bch31]).
    - {!Ft}: fault-tolerant gadgets — noisy executor, verified cats,
      Shor/Steane EC, transversal gates, FT Toffoli, leakage,
      Monte-Carlo memory experiments.
    - {!Threshold}: concatenation flow equations, big-code scaling,
      factoring resource estimates.
    - {!Toric}: Kitaev's toric code + union-find decoder (§7).
    - {!Anyon}: nonabelian flux-pair computation over A₅ (§7.3–7.4).
    - {!Svc}: the persistent estimation service ([ftqcd]) — a
      Unix-socket daemon with a bounded job queue, request
      coalescing and an LRU result cache over the estimators. *)

module Obs = Obs
module Mc = Mc
module Gf2 = Gf2
module Qmath = Qmath
module Group = Group
module Pauli = Pauli
module Circuit = Circuit
module Statevec = Statevec
module Tableau = Tableau
module Frame = Frame
module Codes = Codes
module Csskit = Csskit
module Ft = Ft
module Threshold = Threshold
module Toric = Toric
module Anyon = Anyon
module Svc = Svc

(** Library version. *)
let version = "1.0.0"
