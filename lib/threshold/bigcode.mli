(** Non-concatenated large-code scaling (§5, Eqs. 30–32).

    For a code correcting t errors whose syndrome measurement costs
    ~t^b steps, the block fails when t+1 errors accumulate during
    recovery: Block error ~ (t^b·ε)^{t+1} (Eq. 30).  Optimizing t
    gives t* ≈ e⁻¹·ε^{−1/b} and a minimum block error
    exp(−e⁻¹·b·ε^{−1/b}) (Eq. 31); supporting T error-free cycles
    therefore needs ε ~ (log T)^{−b} (Eq. 32). *)

(** [block_error ~b ~eps ~t] — Eq. (30). *)
val block_error : b:float -> eps:float -> t:int -> float

(** [optimal_t ~b ~eps] — the real-valued optimizer e⁻¹·ε^{−1/b}. *)
val optimal_t : b:float -> eps:float -> float

(** [min_block_error ~b ~eps] — Eq. (31), exp(−e⁻¹ b ε^{−1/b}). *)
val min_block_error : b:float -> eps:float -> float

(** [best_integer_t ~b ~eps ~t_max] — exact discrete minimizer of
    {!block_error} over 1..t_max, with its block error. *)
val best_integer_t : b:float -> eps:float -> t_max:int -> int * float

(** [required_accuracy ~b ~cycles] — Eq. (32): the ε making
    {!min_block_error} ≈ 1/cycles, i.e.
    ε = (e⁻¹·b / ln cycles)^b. *)
val required_accuracy : b:float -> cycles:float -> float

(** Shor's original procedure has b = 4 (§5). *)
val shor_b : float
