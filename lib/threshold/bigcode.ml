let shor_b = 4.0

let block_error ~b ~eps ~t =
  if t < 1 then invalid_arg "Bigcode.block_error: t >= 1";
  (float_of_int t ** b *. eps) ** float_of_int (t + 1)

let e_inv = 1.0 /. Float.exp 1.0

let optimal_t ~b ~eps = e_inv *. (eps ** (-1.0 /. b))
let min_block_error ~b ~eps = Float.exp (-.e_inv *. b *. (eps ** (-1.0 /. b)))

let best_integer_t ~b ~eps ~t_max =
  let best = ref (1, block_error ~b ~eps ~t:1) in
  for t = 2 to t_max do
    let p = block_error ~b ~eps ~t in
    if p < snd !best then best := (t, p)
  done;
  !best

let required_accuracy ~b ~cycles =
  if cycles <= 1.0 then invalid_arg "Bigcode.required_accuracy";
  (e_inv *. b /. log cycles) ** b
