let paper_coefficient = 21.0
let paper_threshold = 1.0 /. 21.0
let step ~a p = a *. p *. p

let level_error ~a ~eps ~level =
  if level < 0 then invalid_arg "Flow.level_error: negative level";
  let rec loop p l = if l = 0 then p else loop (step ~a p) (l - 1) in
  loop eps level

let closed_form ~a ~eps ~level =
  let eps0 = 1.0 /. a in
  eps0 *. ((eps /. eps0) ** (2.0 ** float_of_int level))

let threshold ~a = 1.0 /. a

let levels_needed ~a ~eps ~target =
  if eps >= threshold ~a then None
  else begin
    let rec loop p l =
      if p <= target then Some l
      else if l >= 60 then None
      else loop (step ~a p) (l + 1)
    in
    loop eps 0
  end

let block_size_for ~a ~eps ~gates =
  let target = 1.0 /. gates in
  match levels_needed ~a ~eps ~target with
  | None -> None
  | Some l ->
    let eps0 = threshold ~a in
    let estimate =
      (log (eps0 *. gates) /. log (eps0 /. eps)) ** (log 7.0 /. log 2.0)
    in
    Some (l, 7.0 ** float_of_int l, estimate)
