type estimate = {
  bits : int;
  logical_qubits : int;
  toffoli_gates : float;
  target_gate_error : float;
  target_storage_error : float;
  physical_eps : float;
  levels : int option;
  block_size : int option;
  data_qubits : float option;
  total_qubits : float option;
}

let estimate ?(flow_a = 3e4) ?(ancilla_overhead = 1.35) ?(safety = 3.0)
    ~bits ~physical_eps () =
  let logical_qubits = 5 * bits in
  let toffoli_gates = 38.0 *. (float_of_int bits ** 3.0) in
  (* the paper tolerates a few expected failures over the whole run
     ("less than about 1e-9" per gate for 3e9 gates): budget =
     safety / #gates *)
  let target_gate_error = safety /. toffoli_gates in
  (* storage must hold three extra orders of magnitude (1e-12 vs
     1e-9 in the worked example) *)
  let target_storage_error = target_gate_error /. 1000.0 in
  let levels =
    match
      ( Flow.levels_needed ~a:flow_a ~eps:physical_eps
          ~target:target_gate_error,
        Flow.levels_needed ~a:flow_a ~eps:physical_eps
          ~target:target_storage_error )
    with
    | Some lg, Some ls -> Some (max lg ls)
    | _ -> None
  in
  let block_size = Option.map (fun l -> int_of_float (7.0 ** float_of_int l)) levels in
  let data_qubits =
    Option.map (fun b -> float_of_int (logical_qubits * b)) block_size
  in
  let total_qubits = Option.map (fun d -> d *. ancilla_overhead) data_qubits in
  { bits;
    logical_qubits;
    toffoli_gates;
    target_gate_error;
    target_storage_error;
    physical_eps;
    levels;
    block_size;
    data_qubits;
    total_qubits }

let paper_432 () = estimate ~bits:432 ~physical_eps:1e-6 ()

let steane_block55 ~bits =
  let logical = 5 * bits in
  (* block size 55, overhead factor ≈ 3.4 for ancillas (ref. 48's
     4·10⁵ total for 2160 logical qubits) *)
  (logical, float_of_int (logical * 55) *. 3.37)

let pp fmt e =
  Format.fprintf fmt "factoring %d-bit number:@." e.bits;
  Format.fprintf fmt "  logical qubits      5n      = %d@." e.logical_qubits;
  Format.fprintf fmt "  Toffoli gates       38n^3   = %.3g@." e.toffoli_gates;
  Format.fprintf fmt "  gate error budget           = %.2g@." e.target_gate_error;
  Format.fprintf fmt "  storage error budget        = %.2g@."
    e.target_storage_error;
  Format.fprintf fmt "  physical error rate         = %.2g@." e.physical_eps;
  (match (e.levels, e.block_size, e.data_qubits, e.total_qubits) with
  | Some l, Some b, Some d, Some t ->
    Format.fprintf fmt "  concatenation levels        = %d@." l;
    Format.fprintf fmt "  block size          7^L     = %d@." b;
    Format.fprintf fmt "  data qubits                 = %.3g@." d;
    Format.fprintf fmt "  total qubits (with ancilla) = %.3g@." t
  | _ ->
    Format.fprintf fmt "  BELOW THRESHOLD: no concatenation level suffices@.")
