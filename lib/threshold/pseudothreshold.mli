(** Pseudo-threshold extraction from Monte-Carlo data (E5).

    Given measured level-1 logical failure rates p₁(ε) from the
    [ft] gadget simulations, fit p₁ = A·ε² and report the
    pseudo-threshold ε* = 1/A (where encoding stops paying), together
    with flow-equation projections to higher levels. *)

type fit = {
  a : float;  (** fitted coefficient in p₁ = A·ε² *)
  threshold : float;  (** 1/A *)
  points : (float * float) list;  (** the (ε, p₁) data *)
}

(** [fit points] — inverse-variance-ish weighted fit of A through the
    origin in the variable ε² (simple mean of p/ε²). *)
val fit : (float * float) list -> fit

(** [project fit ~eps ~levels] — p_L for L = 0..levels using the
    fitted A. *)
val project : fit -> eps:float -> levels:int -> float list
