type fit = { a : float; threshold : float; points : (float * float) list }

let fit points =
  match points with
  | [] -> invalid_arg "Pseudothreshold.fit: no points"
  | _ ->
    let ratios = List.map (fun (eps, p) -> p /. (eps *. eps)) points in
    let a = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
    { a; threshold = 1.0 /. a; points }

let project f ~eps ~levels =
  List.init (levels + 1) (fun l -> Flow.level_error ~a:f.a ~eps ~level:l)
