(** Concatenation flow equations (§5, Eqs. 33, 36, 37).

    One level of concatenated [[7,1,3]] coding maps a block error
    probability p to A·p² (Eq. 33's combinatorial estimate gives
    A = C(7,2) = 21): the block fails only when at least two of its
    seven subblocks fail.  Iterating yields the double-exponential
    suppression of Eq. (36) below the threshold p₀ = 1/A, and the
    polylogarithmic block-size requirement of Eq. (37). *)

(** The paper's combinatorial coefficient, C(7,2) = 21. *)
val paper_coefficient : float

(** The paper's corresponding threshold estimate, 1/21 (Eq. 33). *)
val paper_threshold : float

(** [step ~a p] = A·p². *)
val step : a:float -> float -> float

(** [level_error ~a ~eps ~level] iterates [step] [level] times from
    [eps].  [level_error ~a ~eps ~level:0] = eps. *)
val level_error : a:float -> eps:float -> level:int -> float

(** [closed_form ~a ~eps ~level] is Eq. (36):
    ε₀ · (ε/ε₀)^(2^level) with ε₀ = 1/A — identical to
    {!level_error} (exactly, not just asymptotically). *)
val closed_form : a:float -> eps:float -> level:int -> float

(** [threshold ~a] = 1/A. *)
val threshold : a:float -> float

(** [levels_needed ~a ~eps ~target] is the least L with
    ε(L) ≤ target, or [None] if ε ≥ threshold (or L would exceed
    60). *)
val levels_needed : a:float -> eps:float -> target:float -> int option

(** [block_size_for ~a ~eps ~gates] is Eq. (37): the physical block
    size 7^L needed to run a [gates]-gate computation with O(1)
    failure odds, i.e. with per-gate logical error ≤ 1/gates.
    Also returns the closed-form estimate
    (log ε₀·gates / log ε₀/ε)^{log₂ 7} for comparison.
    [None] above threshold. *)
val block_size_for :
  a:float -> eps:float -> gates:float -> (int * float * float) option
(** returned as (levels, 7^levels, closed-form estimate) *)
