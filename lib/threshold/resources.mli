(** Resource estimates for factoring with Shor's algorithm under
    concatenated coding (§6's worked example, E8).

    Gate and qubit counts follow Beckman–Chari–Devabhaktuni–Preskill
    (ref. 47): factoring an n-bit number takes about 5n qubits and
    38·n³ Toffoli gates.  Reliability targets and concatenation levels
    follow the §5 flow equations. *)

type estimate = {
  bits : int;  (** size of the number being factored *)
  logical_qubits : int;  (** 5n *)
  toffoli_gates : float;  (** 38·n³ *)
  target_gate_error : float;  (** per-Toffoli error budget *)
  target_storage_error : float;
  physical_eps : float;  (** assumed elementary error rate *)
  levels : int option;  (** concatenation levels needed *)
  block_size : int option;  (** 7^levels *)
  data_qubits : float option;  (** logical_qubits · block *)
  total_qubits : float option;
      (** with the ancilla-overhead factor included *)
}

(** [estimate ?flow_a ?ancilla_overhead ?safety ~bits ~physical_eps ()]
    reproduces the §6 arithmetic.  [flow_a] is the effective
    per-level flow coefficient (default 3·10⁴ — not Eq. 33's toy 21,
    but a value consistent with the detailed Shor-method flow
    analysis of ref. 23 the paper invokes, which is what makes
    ε = 10⁻⁶ demand 3 levels); [ancilla_overhead] multiplies the
    data-qubit count to cover EC/Toffoli ancillas (default 1.35,
    landing the 432-bit example at "of order 10⁶"); the per-gate
    error budget is [safety]/#gates (default 3 — the paper quotes
    "about 10⁻⁹" for 3·10⁹ Toffolis, i.e. a few expected faults per
    run), with the storage budget 1000× tighter.  The concatenation
    level must satisfy both budgets. *)
val estimate :
  ?flow_a:float ->
  ?ancilla_overhead:float ->
  ?safety:float ->
  bits:int ->
  physical_eps:float ->
  unit ->
  estimate

(** The paper's headline example: 432 bits (130 digits),
    ε = 10⁻⁶ → 3 levels, block 343, ~10⁶ qubits. *)
val paper_432 : unit -> estimate

(** [steane_block55 ~bits] — the §6 comparison point from Steane
    (ref. 48): a block-55 code correcting 5 errors at gate error
    10⁻⁵ needs ≈ 4·10⁵ qubits for the same task.  Returns
    (logical qubits, physical qubits). *)
val steane_block55 : bits:int -> int * float

val pp : Format.formatter -> estimate -> unit
